// Batched SAD evaluation: SadUnit::sad_batch must be indistinguishable
// from per-candidate scalar sad() for every realization — outputs for all
// of them, and for the packed gate-level engines additionally the per-gate
// toggle counts and switched energy (the lane packing must lose no
// activity information, or the Fig. 9 power numbers would silently drift).
#include <algorithm>
#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "axc/accel/configurable.hpp"
#include "axc/accel/sad.hpp"
#include "axc/accel/sad_netlist.hpp"
#include "axc/common/rng.hpp"
#include "axc/logic/simulator.hpp"
#include "axc/resilience/fault.hpp"
#include "axc/resilience/gear_sad.hpp"

namespace axc::accel {
namespace {

std::vector<std::uint8_t> random_pixels(axc::Rng& rng, std::size_t count) {
  std::vector<std::uint8_t> pixels(count);
  for (auto& px : pixels) px = static_cast<std::uint8_t>(rng.bits(8));
  return pixels;
}

/// Applies one (a, candidate) pair to a scalar Simulator in the packed
/// engine's input order (A bits, then B bits, LSB-first per pixel) and
/// returns the SAD output word.
std::uint64_t replay_scalar(logic::Simulator& sim,
                            std::span<const std::uint8_t> a,
                            std::span<const std::uint8_t> candidate) {
  std::vector<unsigned> stimulus;
  stimulus.reserve((a.size() + candidate.size()) * 8);
  for (const std::uint8_t px : a) {
    for (unsigned bit = 0; bit < 8; ++bit) stimulus.push_back(px >> bit & 1u);
  }
  for (const std::uint8_t px : candidate) {
    for (unsigned bit = 0; bit < 8; ++bit) stimulus.push_back(px >> bit & 1u);
  }
  const std::vector<unsigned> out = sim.apply(stimulus);
  std::uint64_t value = 0;
  for (std::size_t j = 0; j < out.size(); ++j) {
    value |= static_cast<std::uint64_t>(out[j]) << j;
  }
  return value;
}

/// Reference: the batch contract stated on SadUnit::sad_batch, evaluated
/// the slow way through scalar sad() calls in candidate order.
std::vector<std::uint64_t> scalar_reference(const SadUnit& unit,
                                            std::span<const std::uint8_t> a,
                                            std::span<const std::uint8_t> c) {
  const std::size_t bp = unit.block_pixels();
  std::vector<std::uint64_t> out(c.size() / bp);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = unit.sad(a, c.subspan(i * bp, bp));
  }
  return out;
}

void expect_batch_matches_scalar(const SadUnit& batch_unit,
                                 const SadUnit& scalar_unit,
                                 std::size_t candidates, std::uint64_t seed) {
  const std::size_t bp = batch_unit.block_pixels();
  axc::Rng rng(seed);
  const auto a = random_pixels(rng, bp);
  const auto c = random_pixels(rng, candidates * bp);
  const auto expected = scalar_reference(scalar_unit, a, c);
  std::vector<std::uint64_t> got(candidates);
  batch_unit.sad_batch(a, c, got);
  ASSERT_EQ(got, expected) << batch_unit.name() << " with " << candidates
                           << " candidates";
}

// -- Default sad_batch over the behavioural realizations -------------------

class SadBatchDefault : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SadBatchDefault, BehaviouralVariantsMatchScalar) {
  for (const SadConfig& config :
       {accu_sad(16), apx_sad_variant(1, 2, 16), apx_sad_variant(3, 4, 16),
        apx_sad_variant(5, 6, 16)}) {
    const SadAccelerator unit(config);
    expect_batch_matches_scalar(unit, unit, GetParam(), 7);
  }
}

TEST_P(SadBatchDefault, ConfigurableSadMatchesScalarInEveryMode) {
  ConfigurableSad unit({apx_sad_variant(2, 4, 16), apx_sad_variant(4, 6, 16)});
  for (unsigned mode = 0; mode < unit.mode_count(); ++mode) {
    unit.select(mode);
    expect_batch_matches_scalar(unit, unit, GetParam(), 11 + mode);
  }
}

TEST_P(SadBatchDefault, GearSadMatchesScalar) {
  const resilience::GearSad unit(16, {8, 2, 4}, 1);
  expect_batch_matches_scalar(unit, unit, GetParam(), 13);
}

// Batch sizes straddling the 64-lane chunk boundary: sub-chunk, exactly one
// chunk, full chunk + remainder.
INSTANTIATE_TEST_SUITE_P(Sizes, SadBatchDefault,
                         ::testing::Values(1, 5, 64, 100));

// -- Packed gate-level engine ----------------------------------------------

class NetlistSadBatch : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NetlistSadBatch, OutputsMatchBehaviouralScalar) {
  for (const SadConfig& config : {accu_sad(16), apx_sad_variant(3, 4, 16)}) {
    const NetlistSad packed(config);
    const SadAccelerator behavioural(config);
    expect_batch_matches_scalar(packed, behavioural, GetParam(), 17);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NetlistSadBatch,
                         ::testing::Values(1, 5, 64, 100));

// Lane packing must preserve the activity accounting exactly: per-gate
// toggles and switched energy of a batched run equal the sum over scalar
// Simulator replays, lane k of each chunk fed lane k's candidate stream.
TEST(NetlistSadBatchActivity, TogglesAndEnergyMatchPerLaneScalarReplay) {
  const SadConfig config = apx_sad_variant(2, 2, 4);
  const NetlistSad packed(config);
  constexpr std::size_t kCandidates = 100;  // chunks of 64 + 36
  constexpr unsigned kChunk = logic::BitslicedSimulator::kLanes;
  const std::size_t bp = config.block_pixels;

  axc::Rng rng(23);
  const auto a = random_pixels(rng, bp);
  const auto c = random_pixels(rng, kCandidates * bp);
  std::vector<std::uint64_t> got(kCandidates);
  packed.sad_batch(a, c, got);

  // Replay: scalar Simulator per lane; lane k sees candidate k, then
  // candidate 64 + k (if present) — the exact stream the packed engine
  // assigns to lane k.
  const logic::Netlist& nl = packed.netlist();
  std::vector<std::uint64_t> toggles(nl.gate_count(), 0);
  double energy = 0.0;
  std::uint64_t vectors = 0;
  for (unsigned lane = 0; lane < kChunk; ++lane) {
    logic::Simulator sim(nl);
    for (std::size_t i = lane; i < kCandidates; i += kChunk) {
      const std::uint64_t value =
          replay_scalar(sim, a, std::span(c).subspan(i * bp, bp));
      ASSERT_EQ(got[i], value) << "candidate " << i;
    }
    for (std::size_t g = 0; g < nl.gate_count(); ++g) {
      toggles[g] += sim.gate_toggles(g);
    }
    energy += sim.switched_energy_fj();
    vectors += sim.vectors_applied();
  }

  EXPECT_EQ(packed.vectors_applied(), vectors);
  // Toggle counts are integer-exact (asserted below); the energy sum only
  // differs by floating-point accumulation order across lanes.
  EXPECT_NEAR(packed.switched_energy_fj(), energy, 1e-9 * energy);
  for (std::size_t g = 0; g < nl.gate_count(); ++g) {
    ASSERT_EQ(packed.gate_toggles(g), toggles[g]) << "gate " << g;
  }
}

// Shrink-then-grow lane patterns (remainder batch before a full one, then a
// scalar call) must stay exact — the per-lane baseline discipline.
TEST(NetlistSadBatchActivity, LaneCountMayShrinkAndGrowBetweenCalls) {
  const SadConfig config = accu_sad(4);
  NetlistSad packed(config);
  const SadAccelerator behavioural(config);
  const std::size_t bp = config.block_pixels;
  axc::Rng rng(29);
  const auto a = random_pixels(rng, bp);

  for (const std::size_t batch : {3u, 70u, 1u, 64u}) {
    const auto c = random_pixels(rng, batch * bp);
    std::vector<std::uint64_t> got(batch);
    packed.sad_batch(a, c, got);
    EXPECT_EQ(got, scalar_reference(behavioural, a, c)) << "batch " << batch;
  }
  // 3 + 70 + 1 + 64 vectors, every one accounted.
  EXPECT_EQ(packed.vectors_applied(), 138u);
  EXPECT_GT(packed.switched_energy_fj(), 0.0);

  packed.reset_activity();
  EXPECT_EQ(packed.vectors_applied(), 0u);
  EXPECT_EQ(packed.switched_energy_fj(), 0.0);
}

// Regression for partial-lane state clobbering: when a remainder pass is
// followed by wider passes — repeated sad_batch / surface() calls on one
// engine — each lane's toggles must count against the last value that
// lane held while *active*, not against whatever a narrower pass wrote
// into inactive lanes. Toggle and energy accounting is checked against
// per-lane scalar replay across the full multi-call sequence.
TEST(NetlistSadBatchActivity, TogglesStayExactAcrossShrinkThenGrowCalls) {
  const SadConfig config = apx_sad_variant(2, 2, 4);
  const NetlistSad packed(config);
  constexpr unsigned kChunk = logic::BitslicedSimulator::kLanes;
  const std::size_t bp = config.block_pixels;
  // Windows shaped like repeated Fig. 8 surface() calls: 81 candidates =
  // one full chunk + a 17-lane remainder, twice — so lanes 17..63 must
  // carry their chunk-1 state across each remainder pass into the next
  // window's full chunk. A trailing 5-candidate window exercises a shrink
  // straight after a full chunk as well.
  const std::vector<std::size_t> window_sizes{81, 81, 5};

  axc::Rng rng(61);
  const auto a = random_pixels(rng, bp);
  std::vector<std::vector<std::uint8_t>> windows;
  std::vector<std::vector<std::uint64_t>> got;
  for (const std::size_t n : window_sizes) {
    windows.push_back(random_pixels(rng, n * bp));
    got.emplace_back(n);
    packed.sad_batch(a, windows.back(), got.back());
  }

  // Per-lane scalar replay over the whole call sequence: lane k's stream
  // is candidate i of every window with i = k (mod 64) — exactly the
  // vectors the packed engine fed lane k, in order.
  const logic::Netlist& nl = packed.netlist();
  std::vector<std::uint64_t> toggles(nl.gate_count(), 0);
  double energy = 0.0;
  std::uint64_t vectors = 0;
  for (unsigned lane = 0; lane < kChunk; ++lane) {
    logic::Simulator sim(nl);
    for (std::size_t w = 0; w < windows.size(); ++w) {
      for (std::size_t i = lane; i < window_sizes[w]; i += kChunk) {
        const std::uint64_t value =
            replay_scalar(sim, a, std::span(windows[w]).subspan(i * bp, bp));
        ASSERT_EQ(got[w][i], value) << "window " << w << " candidate " << i;
      }
    }
    for (std::size_t g = 0; g < nl.gate_count(); ++g) {
      toggles[g] += sim.gate_toggles(g);
    }
    energy += sim.switched_energy_fj();
    vectors += sim.vectors_applied();
  }

  EXPECT_EQ(packed.vectors_applied(), vectors);
  EXPECT_NEAR(packed.switched_energy_fj(), energy, 1e-9 * energy);
  for (std::size_t g = 0; g < nl.gate_count(); ++g) {
    ASSERT_EQ(packed.gate_toggles(g), toggles[g]) << "gate " << g;
  }
}

// -- Fault-injecting realizations ------------------------------------------

// The default sad_batch walks candidates in order through sad(), so a
// same-seed FaultySad pair — one driven scalar, one batched — draws the RNG
// identically and produces identical (possibly corrupted) results.
TEST(FaultySadBatch, SameSeedScalarAndBatchedCampaignsAgree) {
  const SadAccelerator inner(accu_sad(16));
  const resilience::FaultSpec spec{0.05, 41};
  const resilience::FaultySad scalar_unit(inner, spec);
  const resilience::FaultySad batch_unit(inner, spec);
  expect_batch_matches_scalar(batch_unit, scalar_unit, 50, 31);
  EXPECT_EQ(batch_unit.faults_injected(), scalar_unit.faults_injected());
  EXPECT_GT(batch_unit.faults_injected(), 0u);
}

TEST(FaultyNetlistSadBatch, ZeroProbabilityMatchesNetlistSad) {
  const SadConfig config = apx_sad_variant(1, 2, 16);
  const resilience::FaultyNetlistSad faulty(config, {0.0, 5});
  const NetlistSad clean(config);
  expect_batch_matches_scalar(faulty, clean, 100, 37);
  EXPECT_EQ(faulty.faults_injected(), 0u);
}

TEST(FaultyNetlistSadBatch, SameSeedBatchedCampaignsReproduce) {
  const SadConfig config = accu_sad(16);
  const resilience::FaultSpec spec{0.01, 43};
  const resilience::FaultyNetlistSad first(config, spec);
  const resilience::FaultyNetlistSad second(config, spec);
  const std::size_t bp = config.block_pixels;
  axc::Rng rng(47);
  const auto a = random_pixels(rng, bp);
  const auto c = random_pixels(rng, 100 * bp);
  std::vector<std::uint64_t> out1(100), out2(100);
  first.sad_batch(a, c, out1);
  second.sad_batch(a, c, out2);
  EXPECT_EQ(out1, out2);
  EXPECT_EQ(first.faults_injected(), second.faults_injected());
  EXPECT_GT(first.faults_injected(), 0u);
}

TEST(FaultyNetlistSadBatch, CertainFlipsCorruptEveryLaneDeterministically) {
  const SadConfig config = accu_sad(4);
  const resilience::FaultyNetlistSad faulty(config, {1.0, 3});
  const NetlistSad clean(config);
  const std::size_t bp = config.block_pixels;
  axc::Rng rng(53);
  const auto a = random_pixels(rng, bp);
  const auto c = random_pixels(rng, 10 * bp);
  std::vector<std::uint64_t> corrupted(10);
  faulty.sad_batch(a, c, corrupted);
  // p = 1 flips every gate output in every lane: the campaign injects one
  // fault per gate per lane, and no candidate escapes unscathed.
  EXPECT_EQ(faulty.faults_injected(),
            static_cast<std::uint64_t>(clean.netlist().gate_count()) * 10u);
  const auto exact = scalar_reference(SadAccelerator(config), a, c);
  for (std::size_t i = 0; i < corrupted.size(); ++i) {
    EXPECT_NE(corrupted[i], exact[i]) << "candidate " << i;
  }
}

// -- Misuse and performance -------------------------------------------------

TEST(SadBatchRequire, RejectsMismatchedSpans) {
  const SadAccelerator unit(accu_sad(16));
  std::vector<std::uint8_t> a(16, 0), c(3 * 16, 0);
  std::vector<std::uint64_t> out(2);  // 2 * 16 != c.size()
  EXPECT_THROW(unit.sad_batch(a, c, out), std::invalid_argument);
  std::vector<std::uint8_t> short_a(15, 0);
  std::vector<std::uint64_t> out3(3);
  EXPECT_THROW(unit.sad_batch(short_a, c, out3), std::invalid_argument);
}

// The whole point of lane packing: a batched full-search window must not be
// slower than the per-candidate scalar loop on the same engine. (The CI
// speedup floor is asserted here against the scalar path of the *same*
// process, so it holds on slow or single-core runners; BENCH_kernels.json
// records the actual multiple.)
TEST(NetlistSadBatchPerf, BatchedWindowAtLeastAsFastAsScalarLoop) {
  const SadConfig config = accu_sad(16);
  const NetlistSad packed(config);
  const std::size_t bp = config.block_pixels;
  constexpr std::size_t kWindow = 81;  // search_range 4 -> 9x9 candidates
  axc::Rng rng(59);
  const auto a = random_pixels(rng, bp);
  const auto c = random_pixels(rng, kWindow * bp);
  std::vector<std::uint64_t> out(kWindow);

  using clock = std::chrono::steady_clock;
  auto best = [&](auto&& body) {
    double best_s = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = clock::now();
      body();
      best_s = std::min(best_s,
                        std::chrono::duration<double>(clock::now() - t0)
                            .count());
    }
    return best_s;
  };
  const double batched_s = best([&] { packed.sad_batch(a, c, out); });
  const std::span<const std::uint8_t> candidates(c);
  const double scalar_s = best([&] {
    for (std::size_t i = 0; i < kWindow; ++i) {
      out[i] = packed.sad(a, candidates.subspan(i * bp, bp));
    }
  });
  EXPECT_LE(batched_s, scalar_s)
      << "batched " << batched_s * 1e3 << " ms vs scalar " << scalar_s * 1e3
      << " ms";
}

}  // namespace
}  // namespace axc::accel
