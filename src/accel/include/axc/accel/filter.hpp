/// \file filter.hpp
/// The low-pass filter accelerator of the Fig. 10 experiment: a 3x3
/// convolution engine whose nine MAC lanes are built from the library's
/// approximate multipliers and adders, with an area/power roll-up from the
/// structural netlists.
#pragma once

#include <string>

#include "axc/arith/full_adder.hpp"
#include "axc/arith/mul2x2.hpp"
#include "axc/image/convolve.hpp"

namespace axc::accel {

/// Hardware configuration of the filter datapath.
struct FilterConfig {
  arith::Mul2x2Kind mul_block = arith::Mul2x2Kind::Accurate;
  arith::FullAdderKind adder_cell = arith::FullAdderKind::Accurate;
  unsigned approx_lsbs = 0;  ///< approximated LSBs in MAC adders

  std::string name() const;
};

/// A 3x3 filter accelerator with selectable approximate arithmetic.
class FilterAccelerator {
 public:
  explicit FilterAccelerator(const FilterConfig& config);

  const FilterConfig& config() const { return config_; }

  /// Filters \p input with \p kernel on this hardware.
  image::Image apply(const image::Image& input,
                     const image::Kernel3x3& kernel) const;

  /// Structural roll-up: 9 parallel 8x8 multiplier lanes + an 8-stage
  /// accumulation chain of 16-bit adders.
  double area_ge() const;
  double power_nw() const;

 private:
  FilterConfig config_;
  image::MacHardware hardware_;
};

}  // namespace axc::accel
