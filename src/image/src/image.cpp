#include "axc/image/image.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "axc/common/require.hpp"

namespace axc::image {

Image::Image(int width, int height, std::uint8_t fill)
    : width_(width),
      height_(height),
      pixels_(static_cast<std::size_t>(width) * height, fill) {
  require(width >= 1 && height >= 1 && width <= 8192 && height <= 8192,
          "Image: dimensions must be in [1, 8192]");
}

std::uint8_t Image::at_clamped(int x, int y) const {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return at(x, y);
}

double image_mse(const Image& a, const Image& b) {
  require(a.width() == b.width() && a.height() == b.height(),
          "image_mse: size mismatch");
  require(!a.empty(), "image_mse: empty image");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.pixels().size(); ++i) {
    const double d = static_cast<double>(a.pixels()[i]) - b.pixels()[i];
    sum += d * d;
  }
  return sum / static_cast<double>(a.pixels().size());
}

double image_psnr(const Image& a, const Image& b) {
  const double mse = image_mse(a, b);
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace axc::image
