/// \file gear_sad.hpp
/// A SAD accelerator built from GeAr adders — the accuracy-configurable
/// engine the adaptive controller drives.
///
/// Sec. 4.2's GeAr adder is the paper's run-time accuracy knob: the same
/// hardware covers a whole accuracy/latency curve through its (R, P)
/// configuration and the number of error-correction passes (Sec. 6.1 CEC).
/// This engine instantiates that knob inside the Sec. 6 SAD structure: the
/// absolute-difference subtractors and every reduction-tree adder are GeAr
/// instances derived from one base configuration, so a single
/// (config, corrections) pair sets the accuracy of the whole accelerator.
#pragma once

#include <cstdint>
#include <vector>

#include "axc/accel/sad_unit.hpp"
#include "axc/arith/gear.hpp"

namespace axc::resilience {

/// Adapts a base GeAr configuration (defined at the pixel width, N = 8) to
/// an arbitrary operand width, preserving R and growing P just enough to
/// keep the sub-adder windows tiling the word ((width - L) divisible by R).
/// Widths not exceeding the base window L degenerate to the exact
/// single-window configuration.
arith::GeArConfig gear_config_for_width(const arith::GeArConfig& base,
                                        unsigned width);

/// SAD accelerator whose subtractors and reduction-tree adders are GeAr
/// instances with a common correction-iteration count.
class GearSad final : public accel::SadUnit {
 public:
  /// \p base is an 8-bit GeAr configuration (the pixel datapath); wider
  /// tree levels use gear_config_for_width() derivatives. Every adder runs
  /// \p correction_iterations CEC passes.
  GearSad(unsigned block_pixels, const arith::GeArConfig& base,
          unsigned correction_iterations = 0);

  unsigned block_pixels() const override { return block_pixels_; }
  std::uint64_t sad(std::span<const std::uint8_t> a,
                    std::span<const std::uint8_t> b) const override;

  /// "GeArSAD<GeAr(N=8,R=2,P=2)+CEC1,8x8>".
  std::string name() const override;

  /// True when every constituent adder converges to the exact sum.
  bool is_exact() const override;

  /// Purely functional — safe for concurrent block-parallel encoding.
  bool is_concurrent_safe() const override { return true; }

  const arith::GeArConfig& base_config() const { return base_; }
  unsigned correction_iterations() const { return corrections_; }

 private:
  unsigned block_pixels_;
  arith::GeArConfig base_;
  unsigned corrections_;
  arith::GeArAdder subtractor_;                ///< 8-bit abs-diff datapath
  std::vector<arith::GeArAdder> tree_adders_;  ///< one per tree level
};

}  // namespace axc::resilience
