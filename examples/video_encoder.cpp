/// Example: encode a synthetic video with an approximate-SAD motion
/// estimator (the Sec. 6 / Fig. 9 scenario) and report the bit-rate /
/// quality / power trade-off of each accelerator mode.
#include <iostream>

#include "axc/accel/sad_netlist.hpp"
#include "axc/video/encoder.hpp"
#include "cli_util.hpp"

namespace {

constexpr const char* kUsage =
    "usage: video_encoder [variant approx_lsbs]\n"
    "\n"
    "Encodes a synthetic sequence with the accurate SAD baseline plus an\n"
    "approximate mode. Without arguments the recommended ApxSAD3 sweep\n"
    "(2/4/6 approximated LSBs) runs; with arguments one mode is compared\n"
    "against the baseline.\n"
    "\n"
    "arguments:\n"
    "  variant        SAD variant, 1..5 (ApxSAD1..ApxSAD5)\n"
    "  approx_lsbs    approximated low bits, 0..16\n"
    "\n"
    "options:\n"
    "  -h, --help     this text\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace axc;

  if (cli::wants_help(argc, argv)) {
    cli::print_usage(kUsage);
    return 0;
  }
  if (argc != 1 && argc != 3) {
    cli::usage_error(kUsage,
                     "expected no arguments or exactly <variant> <lsbs>");
  }
  long variant = 0;
  long lsbs = 0;
  if (argc == 3) {
    variant = cli::require_long(kUsage, "variant", argv[1], 1, 5);
    lsbs = cli::require_long(kUsage, "approx_lsbs", argv[2], 0, 16);
  }

  video::SequenceConfig sc;
  sc.width = 64;
  sc.height = 64;
  sc.frames = 6;
  sc.objects = 3;
  const video::Sequence sequence = video::generate_sequence(sc);
  std::cout << "Synthetic sequence: " << sc.width << "x" << sc.height << ", "
            << sc.frames << " frames, " << sc.objects
            << " moving objects + global pan\n\n";

  video::EncoderConfig ec;
  ec.motion.block_size = 8;
  ec.motion.search_range = 4;
  ec.quant_step = 8;

  const auto report = [&](const accel::SadConfig& config) {
    const accel::SadAccelerator sad(config);
    const video::EncodeStats stats = video::Encoder(ec, sad).encode(sequence);
    const auto hw = accel::characterize_sad(config, 256);
    std::printf("%-22s %8llu bits  %6.2f dB  %10.0f nW  (%zu gates)\n",
                config.name().c_str(),
                static_cast<unsigned long long>(stats.total_bits),
                stats.psnr_db, hw.power_nw, hw.gate_count);
    return stats.total_bits;
  };

  const std::uint64_t base = report(accel::accu_sad(64));
  if (argc == 3) {
    const std::uint64_t bits =
        report(accel::apx_sad_variant(static_cast<int>(variant),
                                      static_cast<unsigned>(lsbs), 64));
    std::cout << "\nBit-rate increase: "
              << (static_cast<double>(bits) - static_cast<double>(base)) /
                     static_cast<double>(base) * 100.0
              << "%\n";
    return 0;
  }
  for (const unsigned lsbs : {2u, 4u, 6u}) {
    report(accel::apx_sad_variant(3, lsbs, 64));
  }
  std::cout << "\n(As in the paper's case study, ApxSAD3 with 4 approximated"
               "\n LSBs gives the best power/bit-rate trade-off; pass"
               "\n <variant> <lsbs> to explore other modes.)\n";
  return 0;
}
