/// \file evaluate.hpp
/// Empirical error evaluation: exhaustive sweeps where the input space
/// permits, seeded Monte-Carlo sampling otherwise.
///
/// This is the "extensive numerical simulation" path that the GeAr
/// analytic model (gear_model.hpp) exists to avoid — both are provided so
/// the claim can be demonstrated (bench/gear_error_model) and the model
/// validated against ground truth (tests).
#pragma once

#include <cstdint>
#include <functional>

#include "axc/arith/adder.hpp"
#include "axc/arith/multiplier.hpp"
#include "axc/error/metrics.hpp"
#include "axc/logic/netlist.hpp"

namespace axc::error {

/// Evaluation policy.
struct EvalOptions {
  /// Sweep the whole space when total input bits <= this; sample otherwise.
  unsigned max_exhaustive_bits = 22;
  /// Monte-Carlo sample count when sampling.
  std::uint64_t samples = 1u << 20;
  std::uint64_t seed = 0xA5C0FFEEULL;
  /// Worker threads: 0 = auto (the AXC_EVAL_THREADS environment variable,
  /// else hardware concurrency). The input space is split into fixed-size
  /// chunks with deterministic per-chunk RNG sub-seeds and partials are
  /// merged in chunk order, so results are bit-identical for every thread
  /// count (tests/error/test_parallel_eval.cpp).
  unsigned threads = 0;
};

/// Evaluates an arbitrary pair of functions over a packed input word of
/// \p input_bits bits. \p output_ceiling feeds NMED (see ErrorAccumulator).
ErrorStats evaluate_function(
    unsigned input_bits, std::uint64_t output_ceiling,
    const std::function<std::uint64_t(std::uint64_t)>& approx,
    const std::function<std::uint64_t(std::uint64_t)>& exact,
    const EvalOptions& options = {});

/// Error statistics of a combinational \p netlist against \p exact over its
/// packed input word (primary inputs LSB-first, <= 63 of them; the packed
/// primary outputs are the approximate value). The gate-level counterpart
/// of evaluate_function: truth comes from simulating the structure itself,
/// so it covers netlists with no behavioural model (approximate synthesis
/// output, fault-free references for the Sec. 5 experiments). Runs on the
/// compiled tape engine, 64 vectors per gate pass with activity counting
/// off — evaluation never reads toggles, so the per-op accounting cost is
/// shed entirely. Same chunking discipline as evaluate_function: results
/// are bit-identical for every thread count.
ErrorStats evaluate_netlist(
    const logic::Netlist& netlist, std::uint64_t output_ceiling,
    const std::function<std::uint64_t(std::uint64_t)>& exact,
    const EvalOptions& options = {});

/// Error statistics of \p adder against exact addition on uniform operands
/// (the input distribution assumed throughout Secs. 4-5; Sec. 6.2 then
/// shows where that assumption breaks).
ErrorStats evaluate_adder(const arith::Adder& adder,
                          const EvalOptions& options = {});

/// Error statistics of \p multiplier against the exact product.
ErrorStats evaluate_multiplier(const arith::ApproxMultiplier& multiplier,
                               const EvalOptions& options = {});

}  // namespace axc::error
