/// \file client.hpp
/// Routing-aware cluster client: canonical request hash -> owning node,
/// fan-out sweeps, failover along the replica list.
///
/// The client holds one RetryingClient per ring node (so every per-node
/// transport failure first gets the usual bounded-backoff retries) and a
/// RoutingTable over the deterministic static ring. A single call routes
/// to the key's owner; when the owner is unreachable (TransportError
/// after its retries) or draining (Status::ShuttingDown) the call fails
/// over along the XOR-distance-ranked node list — the K-replica contract
/// means the next-closest node already holds the cached answer, so a
/// node kill costs one extra hop of latency, never a recompute.
///
/// sweep() fans a whole design-space batch out: requests are grouped by
/// their current-rank node, each group ships as one pipelined
/// call_bytes_batch on its own thread, and failed groups escalate to the
/// next rank in later rounds. Results merge positionally, so a sweep
/// over N nodes returns byte-identical results to a 1-node run — the
/// responses are pure functions of canonical bytes and the merge order
/// is the caller's request order.
///
/// Instruments: service.cluster.routed (requests routed),
/// service.cluster.failovers (hops past the preferred node).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "axc/cluster/ring.hpp"
#include "axc/service/protocol.hpp"
#include "axc/service/retry.hpp"

namespace axc::cluster {

struct ClusterClientOptions {
  /// Per-node retry policy (each node gets its own jitter stream derived
  /// from jitter_seed + node index, so backoff stays deterministic but
  /// not lockstep).
  service::RetryPolicy retry{};
  /// Deadline stamped on every request; 0 = none.
  std::uint32_t deadline_ms = 0;
};

class ClusterClient {
 public:
  /// One connection factory per ring node, in ring (stencil) order — the
  /// index in this vector IS the node's ring index.
  ClusterClient(std::vector<service::RetryingClient::ConnectionFactory> nodes,
                ClusterClientOptions options = {});

  std::size_t size() const { return nodes_.size(); }
  const RoutingTable& routing() const { return routing_; }

  void set_deadline_ms(std::uint32_t deadline_ms) {
    deadline_ms_ = deadline_ms;
  }
  std::uint32_t deadline_ms() const { return deadline_ms_; }

  /// Ring index the request would be routed to first.
  std::size_t owner_of(const service::Bytes& request) const;

  /// One fully-encoded request -> raw response bytes: route to the owner,
  /// fail over along the replica ranking on TransportError (after the
  /// node's own retries) or Status::ShuttingDown. Throws the last node's
  /// TransportError when every node is unreachable.
  service::Bytes call_bytes(const service::Bytes& request);

  /// Fans \p requests out across the ring (grouped by owning node, one
  /// pipelined batch per node per round, groups in parallel) and returns
  /// responses positionally aligned with \p requests — byte-identical to
  /// issuing them serially against a single node.
  std::vector<service::Bytes> sweep(const std::vector<service::Bytes>& requests);

  /// Typed calls (same contract as RetryingClient, plus routing).
  service::CharacterizeResponse characterize_adder(
      const service::CharacterizeAdderRequest& request);
  service::CharacterizeResponse characterize_multiplier(
      const service::CharacterizeMultiplierRequest& request);
  service::EvaluateErrorResponse evaluate_error(
      const service::EvaluateErrorRequest& request);
  service::GearDesignSpaceResponse gear_design_space(
      const service::GearDesignSpaceRequest& request);
  service::HeteroAdderDesignSpaceResponse hetero_adder_design_space(
      const service::HeteroAdderDesignSpaceRequest& request);
  service::ArrayMulDesignSpaceResponse array_mul_design_space(
      const service::ArrayMulDesignSpaceRequest& request);
  service::StaticAdderDesignSpaceResponse static_adder_design_space(
      const service::StaticAdderDesignSpaceRequest& request);
  service::EncodeProbeResponse encode_probe(
      const service::EncodeProbeRequest& request);
  void ping();

  /// Served accuracy level of the last successful single call, and the
  /// per-request levels of the last sweep() (positionally aligned).
  std::uint8_t last_served_level() const { return last_served_level_; }
  const std::vector<std::uint8_t>& last_served_levels() const {
    return last_served_levels_;
  }

  /// Hops past the preferred node, lifetime total (dead/draining nodes
  /// routed around). Retries *within* a node are the per-node clients'
  /// business and counted by service.retries as usual.
  std::uint64_t failovers() const { return failovers_; }
  /// Sum of per-node retry counts.
  std::uint64_t retries() const;

 private:
  /// Ranked node indices for a request (owner first, full ring depth —
  /// failover walks the whole ring rather than giving up after K).
  std::vector<std::size_t> ranked_nodes(const service::Bytes& request) const;

  RoutingTable routing_;
  std::vector<std::unique_ptr<service::RetryingClient>> nodes_;
  std::uint32_t deadline_ms_ = 0;
  std::uint8_t last_served_level_ = 0;
  std::vector<std::uint8_t> last_served_levels_;
  std::uint64_t failovers_ = 0;
};

}  // namespace axc::cluster
