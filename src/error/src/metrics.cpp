#include "axc/error/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace axc::error {

void ErrorAccumulator::record(std::uint64_t approx, std::uint64_t exact) {
  ++samples_;
  const std::uint64_t distance =
      approx > exact ? approx - exact : exact - approx;
  if (distance != 0) ++error_count_;
  max_error_ = std::max(max_error_, distance);
  const double d = static_cast<double>(distance);
  sum_abs_ += d;
  sum_sq_ += d * d;
  sum_rel_ += d / static_cast<double>(std::max<std::uint64_t>(exact, 1));
}

void ErrorAccumulator::merge(const ErrorAccumulator& other) {
  samples_ += other.samples_;
  error_count_ += other.error_count_;
  max_error_ = std::max(max_error_, other.max_error_);
  sum_abs_ += other.sum_abs_;
  sum_sq_ += other.sum_sq_;
  sum_rel_ += other.sum_rel_;
}

ErrorStats ErrorAccumulator::finish(bool exhaustive) const {
  ErrorStats stats;
  stats.samples = samples_;
  stats.error_count = error_count_;
  stats.max_error = max_error_;
  stats.exhaustive = exhaustive;
  if (samples_ == 0) return stats;
  const double n = static_cast<double>(samples_);
  stats.error_rate = static_cast<double>(error_count_) / n;
  stats.mean_error_distance = sum_abs_ / n;
  stats.normalized_med =
      output_ceiling_ > 0
          ? stats.mean_error_distance / static_cast<double>(output_ceiling_)
          : 0.0;
  stats.mean_relative_error = sum_rel_ / n;
  stats.mean_squared_error = sum_sq_ / n;
  stats.root_mean_squared_error = std::sqrt(stats.mean_squared_error);
  return stats;
}

}  // namespace axc::error
