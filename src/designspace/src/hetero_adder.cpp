#include "axc/designspace/hetero_adder.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "axc/common/require.hpp"

namespace axc::designspace {

namespace {

std::uint64_t low_mask(unsigned bits) {
  return bits >= 64 ? ~0ull : (1ull << bits) - 1;
}

}  // namespace

const char* hetero_sub_adder_name(HeteroSubAdder kind) {
  switch (kind) {
    case HeteroSubAdder::Accurate: return "accurate";
    case HeteroSubAdder::CarryCut: return "carry_cut";
    case HeteroSubAdder::Truncated: return "truncated";
  }
  return "?";
}

unsigned hetero_width(std::span<const HeteroBlockSpec> blocks) {
  unsigned width = 0;
  for (const HeteroBlockSpec& block : blocks) width += block.width;
  return width;
}

std::vector<HeteroBlockSpec> make_hetero_blocks(unsigned width,
                                                unsigned block_width,
                                                HeteroSubAdder low_kind,
                                                unsigned approx_blocks) {
  require(width >= 1 && block_width >= 1 && block_width <= width,
          "make_hetero_blocks: invalid shape");
  const unsigned count = (width + block_width - 1) / block_width;
  require(approx_blocks <= count,
          "make_hetero_blocks: more approximate blocks than blocks");
  std::vector<HeteroBlockSpec> blocks;
  blocks.reserve(count);
  unsigned remaining = width;
  for (unsigned i = 0; i < count; ++i) {
    const unsigned w = std::min(block_width, remaining);
    const HeteroSubAdder kind =
        i < approx_blocks ? low_kind : HeteroSubAdder::Accurate;
    blocks.push_back({kind, w});
    remaining -= w;
  }
  return blocks;
}

HeteroBlockAdder::HeteroBlockAdder(std::vector<HeteroBlockSpec> blocks)
    : blocks_(std::move(blocks)) {
  require(!blocks_.empty(), "HeteroBlockAdder: needs at least one block");
  for (const HeteroBlockSpec& block : blocks_) {
    require(block.width >= 1, "HeteroBlockAdder: zero-width block");
    width_ += block.width;
  }
  require(width_ <= 63, "HeteroBlockAdder: width must be <= 63");
}

std::uint64_t HeteroBlockAdder::add(std::uint64_t a, std::uint64_t b,
                                    unsigned carry_in) const {
  a &= low_mask(width_);
  b &= low_mask(width_);
  std::uint64_t result = 0;
  std::uint64_t carry = carry_in ? 1 : 0;
  unsigned offset = 0;
  for (const HeteroBlockSpec& block : blocks_) {
    const unsigned w = block.width;
    const std::uint64_t am = (a >> offset) & low_mask(w);
    const std::uint64_t bm = (b >> offset) & low_mask(w);
    switch (block.kind) {
      case HeteroSubAdder::Accurate: {
        const std::uint64_t s = am + bm + carry;
        result |= (s & low_mask(w)) << offset;
        carry = s >> w;
        break;
      }
      case HeteroSubAdder::CarryCut: {
        const std::uint64_t s = am + bm + carry;
        result |= (s & low_mask(w)) << offset;
        carry = 0;
        break;
      }
      case HeteroSubAdder::Truncated:
        carry = 0;
        break;
    }
    offset += w;
  }
  return result | (carry << width_);
}

std::string HeteroBlockAdder::name() const {
  std::string name = "Hetero" + std::to_string(width_);
  for (const HeteroBlockSpec& block : blocks_) {
    const char tag[] = {'A', 'C', 'T'};
    name += '_';
    name += tag[static_cast<unsigned>(block.kind)];
    name += std::to_string(block.width);
  }
  return name;
}

bool HeteroBlockAdder::is_exact() const {
  for (const HeteroBlockSpec& block : blocks_) {
    if (block.kind != HeteroSubAdder::Accurate) return false;
  }
  return true;
}

HeteroErrorModel hetero_error_model(
    std::span<const HeteroBlockSpec> blocks) {
  const unsigned width = hetero_width(blocks);
  require(!blocks.empty() && width >= 1 && width <= 63,
          "hetero_error_model: invalid block list");

  // The error D = exact - approx is always >= 0 and decomposes exactly as
  //   D = sum over dropped carry-outs of co_i * 2^(off_i + w_i)
  //     + sum over truncated blocks of (a_i + b_i) * 2^(off_i),
  // where a carry-out is dropped when its block is CarryCut, or Accurate
  // followed by a Truncated block (which ignores its carry-in). MED is the
  // expectation of that sum (linearity — no independence needed); ER comes
  // from a joint DP over (carry, any-error-so-far); WCE is attained at
  // all-ones operands, which maximize every term simultaneously.
  HeteroErrorModel model;
  double pc = 0.0;       // P(carry into the current block)
  double p[2][2] = {{1.0, 0.0}, {0.0, 0.0}};  // p[carry][err_so_far]
  unsigned offset = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const HeteroBlockSpec& block = blocks[i];
    const unsigned w = block.width;
    const bool top = i + 1 == blocks.size();
    if (block.kind == HeteroSubAdder::Truncated) {
      // E[a_i + b_i] = 2^w - 1; error whenever a_i + b_i > 0.
      model.med += (std::ldexp(1.0, static_cast<int>(w)) - 1.0) *
                   std::ldexp(1.0, static_cast<int>(offset));
      model.wce += ((1ull << (w + 1)) - 2) << offset;
      const double perr = 1.0 - std::ldexp(1.0, -2 * static_cast<int>(w));
      double next[2][2] = {{0, 0}, {0, 0}};
      for (int c = 0; c < 2; ++c) {
        for (int e = 0; e < 2; ++e) {
          next[0][1] += p[c][e] * (e ? 1.0 : perr);
          next[0][0] += p[c][e] * (e ? 0.0 : 1.0 - perr);
        }
      }
      p[0][0] = next[0][0];
      p[0][1] = next[0][1];
      p[1][0] = p[1][1] = 0.0;
      pc = 0.0;
    } else {
      const bool accurate = block.kind == HeteroSubAdder::Accurate;
      const bool dropped =
          !accurate ||
          (!top && blocks[i + 1].kind == HeteroSubAdder::Truncated);
      // P(carry-out | carry-in c) = P(a+b >= 2^w) + c * P(a+b = 2^w - 1)
      //                           = (2^w - 1)/2^(w+1) + c * 2^-w.
      const double q0 = (std::ldexp(1.0, static_cast<int>(w)) - 1.0) *
                        std::ldexp(1.0, -static_cast<int>(w) - 1);
      const double bump = std::ldexp(1.0, -static_cast<int>(w));
      const double q = q0 + pc * bump;
      if (dropped) {
        model.med += q * std::ldexp(1.0, static_cast<int>(offset + w));
        model.wce += 1ull << (offset + w);
      }
      double next[2][2] = {{0, 0}, {0, 0}};
      for (int c = 0; c < 2; ++c) {
        for (int e = 0; e < 2; ++e) {
          const double qc = c ? q0 + bump : q0;
          for (int co = 0; co < 2; ++co) {
            const double prob = p[c][e] * (co ? qc : 1.0 - qc);
            const int e2 = (e || (dropped && co)) ? 1 : 0;
            const int c2 = accurate ? co : 0;
            next[c2][e2] += prob;
          }
        }
      }
      for (int c = 0; c < 2; ++c) {
        for (int e = 0; e < 2; ++e) p[c][e] = next[c][e];
      }
      pc = accurate ? q : 0.0;
    }
    offset += w;
  }
  model.error_rate = p[0][1] + p[1][1];
  model.nmed =
      model.med / (std::ldexp(1.0, static_cast<int>(width) + 1) - 2.0);
  model.exact = model.wce == 0;
  return model;
}

}  // namespace axc::designspace
