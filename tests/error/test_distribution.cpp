#include "axc/error/distribution.hpp"

#include <gtest/gtest.h>

#include "axc/arith/gear.hpp"

namespace axc::error {
namespace {

using arith::FullAdderKind;
using arith::GeArAdder;
using arith::GeArConfig;
using arith::RippleAdder;

TEST(ErrorDistribution, BasicBookkeeping) {
  ErrorDistribution dist;
  dist.record(0);
  dist.record(0);
  dist.record(-4);
  dist.record(4);
  EXPECT_EQ(dist.samples(), 4u);
  EXPECT_DOUBLE_EQ(dist.probability(0), 0.5);
  EXPECT_DOUBLE_EQ(dist.probability(-4), 0.25);
  EXPECT_DOUBLE_EQ(dist.probability(99), 0.0);
  EXPECT_EQ(dist.support().size(), 3u);
}

TEST(ErrorDistribution, OptimalOffsetIsMedian) {
  ErrorDistribution dist;
  for (int i = 0; i < 10; ++i) dist.record(0);
  for (int i = 0; i < 3; ++i) dist.record(-16);
  EXPECT_EQ(dist.optimal_offset(), 0);  // majority at zero
  // Residual at the median is minimal among candidates.
  EXPECT_LE(dist.residual_med(dist.optimal_offset()),
            dist.residual_med(-16));
  EXPECT_LE(dist.residual_med(dist.optimal_offset()),
            dist.residual_med(-8));
}

TEST(ErrorDistribution, EmptyOffsetRejected) {
  ErrorDistribution dist;
  EXPECT_THROW(dist.optimal_offset(), std::invalid_argument);
}

TEST(AdderErrorDistribution, ExactAdderIsDeltaAtZero) {
  const arith::ExactAdder adder(8);
  const ErrorDistribution dist = adder_error_distribution(adder);
  EXPECT_EQ(dist.support().size(), 1u);
  EXPECT_DOUBLE_EQ(dist.probability(0), 1.0);
}

TEST(AdderErrorDistribution, GearErrorsTakeSpecificValues) {
  // Sec. 6.1's observation: GeAr error magnitudes are restricted to a few
  // specific values (missing carries at sub-adder result boundaries, i.e.
  // multiples of 2^(start_i + P) truncated into the result window).
  const GeArConfig config{8, 2, 2};
  const GeArAdder adder(config);
  const ErrorDistribution dist = adder_error_distribution(adder);
  const auto support = dist.support();
  // Errors must be strictly negative (dropped carries) or zero, and few.
  for (const std::int64_t e : support) EXPECT_LE(e, 0);
  EXPECT_LE(support.size(), 8u);
  EXPECT_GT(dist.probability(0), 0.5);  // mostly correct
}

TEST(AdderErrorDistribution, LsbApproxRippleHasBoundedSupport) {
  const RippleAdder adder =
      RippleAdder::lsb_approximated(8, FullAdderKind::Apx3, 2);
  const ErrorDistribution dist = adder_error_distribution(adder);
  for (const std::int64_t e : dist.support()) {
    EXPECT_LE(std::abs(e), 16);  // errors confined near the approx region
  }
}

TEST(AdderErrorDistribution, SampledPathIsDeterministic) {
  const GeArAdder adder({16, 4, 4});
  const ErrorDistribution a = adder_error_distribution(adder, 22, 50000, 9);
  const ErrorDistribution b = adder_error_distribution(adder, 22, 50000, 9);
  EXPECT_EQ(a.histogram(), b.histogram());
}

}  // namespace
}  // namespace axc::error
