/// \file compressor_mul.hpp
/// Array multipliers built from exact and approximate 4:2 compressors
/// (Masadeh et al., arXiv:1908.01343) with a probabilistic error model.
///
/// The partial-product matrix is reduced column by column: groups of four
/// bits go through a 4:2 compressor (sum in-column, carry and — for the
/// exact compressor — a second carry into the next column), three leftover
/// bits through an accurate full adder, one or two pass through. Columns
/// below `approx_columns` use the approximate compressor kind; everything
/// else, including the final carry-propagate adder, is exact. Both
/// approximate compressors only ever under-count (deficit-only errors), so
/// the expected error adds linearly across compressor instances; the model
/// propagates signal one-probabilities through the reduction under an
/// independence assumption that is exact for the first stage and
/// approximate afterwards (bounds pinned by the tests, see DESIGN.md §13).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "axc/logic/netlist.hpp"

namespace axc::designspace {

/// Which 4:2 compressor implements the reduction in approximate columns.
/// Both approximate members drop value but never add it (deficit-only),
/// and both are strictly cheaper than Exact42 in gate-equivalents
/// (9.98 / 6.32 vs 10.65 GE) while producing one fewer output bit.
enum class CompressorKind : std::uint8_t {
  Exact42 = 0,  ///< FA + HA cascade: sum + 2*(carry + cout), exact
  PairXor = 1,  ///< sum = (x1^x2)|(x3^x4), carry = (x1&x2)|(x3&x4):
                ///< deficit 1 when both pairs hold a single one, 2 when
                ///< both are full
  OrPair = 2,   ///< pairs collapsed by OR into a half adder: sum = p^q,
                ///< carry = p&q with p = x1|x2, q = x3|x4
};

/// "Exact42" / "PairXor" / "OrPair".
const char* compressor_kind_name(CompressorKind kind);

/// Behavioral array multiplier, bit-equivalent to compressor_mul_netlist
/// (pinned by the 4-engine test): same column order, same grouping, same
/// compressor library.
class CompressorArrayMultiplier {
 public:
  CompressorArrayMultiplier(unsigned width, CompressorKind kind,
                            unsigned approx_columns);

  unsigned width() const { return width_; }
  CompressorKind kind() const { return kind_; }
  unsigned approx_columns() const { return approx_columns_; }
  std::uint64_t multiply(std::uint64_t a, std::uint64_t b) const;
  std::string name() const;
  bool is_exact() const {
    return approx_columns_ == 0 || kind_ == CompressorKind::Exact42;
  }

 private:
  unsigned width_;
  CompressorKind kind_;
  unsigned approx_columns_;
};

/// Netlist for the same configuration: inputs a0..aN-1, b0..bN-1, outputs
/// p0..p2N-1.
logic::Netlist compressor_mul_netlist(unsigned width, CompressorKind kind,
                                      unsigned approx_columns);

/// Probabilistic error estimates under i.i.d. uniform operands. `med_est`
/// is exact-in-expectation per compressor under the stage-input
/// independence assumption (deficit-only errors add linearly);
/// `error_rate_est` upper-bounds ER by a union-style product. When
/// `exact` is true the configuration provably has zero error and all
/// estimates are exact zeros.
struct MulErrorModel {
  double error_rate_est = 0.0;
  double med_est = 0.0;
  double nmed_est = 0.0;  ///< med_est / (2^width - 1)^2
  bool exact = false;
};

MulErrorModel compressor_mul_error_model(unsigned width, CompressorKind kind,
                                         unsigned approx_columns);

}  // namespace axc::designspace
