#include "axc/chaos/chaos.hpp"

#include <chrono>
#include <thread>

#include "axc/obs/obs.hpp"

namespace axc::chaos {

namespace {

using service::TransportError;

struct ChaosInstruments {
  obs::Counter& total = obs::counter("service.transport_faults_injected");
  obs::Counter& delays = obs::counter("service.chaos.delays");
  obs::Counter& disconnects = obs::counter("service.chaos.disconnects");
  obs::Counter& dropped_requests =
      obs::counter("service.chaos.dropped_requests");
  obs::Counter& corrupted_requests =
      obs::counter("service.chaos.corrupted_requests");
  obs::Counter& dropped_responses =
      obs::counter("service.chaos.dropped_responses");
  obs::Counter& corrupted_responses =
      obs::counter("service.chaos.corrupted_responses");
};

ChaosInstruments& instruments() {
  static ChaosInstruments instance;
  return instance;
}

}  // namespace

service::Bytes FaultyConnection::roundtrip(
    std::span<const std::uint8_t> request) {
  ChaosInstruments& obs = instruments();
  ++stats_.roundtrips;
  if (broken_) {
    throw TransportError(TransportError::Kind::BrokenStream,
                         "chaos: stream is broken (reconnect required)");
  }

  if (draw(options_.delay)) {
    // Draw the stall length even when the sleep hook swallows it, so the
    // rng stream (and with it every later fault decision) is independent
    // of whether a harness opts out of real wall-clock stalls.
    const std::uint32_t bound = options_.delay_max_ms > 0
                                    ? options_.delay_max_ms
                                    : 1;
    const auto stall = static_cast<std::uint32_t>(1 + rng_.below(bound));
    ++stats_.delays;
    obs.delays.add();
    obs.total.add();
    if (options_.sleep_ms) {
      options_.sleep_ms(stall);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(stall));
    }
  }

  if (draw(options_.disconnect)) {
    ++stats_.disconnects;
    obs.disconnects.add();
    obs.total.add();
    broken_ = true;
    throw TransportError(TransportError::Kind::BrokenStream,
                         "chaos: disconnected mid-frame");
  }

  if (draw(options_.drop_request)) {
    ++stats_.dropped_requests;
    obs.dropped_requests.add();
    obs.total.add();
    throw TransportError(TransportError::Kind::Injected,
                         "chaos: request frame dropped");
  }

  const bool corrupt_request = draw(options_.corrupt_request);
  service::Bytes response;
  if (corrupt_request && !request.empty()) {
    ++stats_.corrupted_requests;
    obs.corrupted_requests.add();
    obs.total.add();
    // Version-byte flip: detectably malformed, never a different valid
    // request (see the header comment).
    service::Bytes mangled(request.begin(), request.end());
    mangled[0] ^= 0x80;
    response = inner_.roundtrip(mangled);
  } else {
    response = inner_.roundtrip(request);
  }

  if (draw(options_.drop_response)) {
    ++stats_.dropped_responses;
    obs.dropped_responses.add();
    obs.total.add();
    // The server executed (and possibly cached) the job; only the answer
    // is lost — exactly the case that makes retries need idempotency.
    throw TransportError(TransportError::Kind::Injected,
                         "chaos: response frame dropped");
  }

  if (draw(options_.corrupt_response) && !response.empty()) {
    ++stats_.corrupted_responses;
    obs.corrupted_responses.add();
    obs.total.add();
    response[0] ^= 0x80;
  }

  return response;
}

}  // namespace axc::chaos
