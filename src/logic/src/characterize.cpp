#include "axc/logic/characterize.hpp"

#include <algorithm>

#include "axc/common/require.hpp"
#include "axc/logic/bitsliced.hpp"
#include "axc/logic/adder_netlists.hpp"
#include "axc/logic/mul_netlists.hpp"

namespace axc::logic {

TruthTable netlist_truth_table(const Netlist& netlist) {
  const unsigned n_in = static_cast<unsigned>(netlist.inputs().size());
  const unsigned n_out = static_cast<unsigned>(netlist.outputs().size());
  require(n_in >= 1 && n_in <= 20 && n_out >= 1 && n_out <= 32,
          "netlist_truth_table: netlist too wide to enumerate");
  // Bitsliced enumeration: 64 rows per pass over the gate list.
  BitslicedSimulator sim(netlist);
  const std::uint64_t total = std::uint64_t{1} << n_in;
  std::vector<std::uint32_t> rows(total);
  for (std::uint64_t base = 0; base < total;
       base += BitslicedSimulator::kLanes) {
    const unsigned lanes = static_cast<unsigned>(
        std::min<std::uint64_t>(BitslicedSimulator::kLanes, total - base));
    sim.apply_word_range(base, lanes);
    for (unsigned k = 0; k < lanes; ++k) {
      rows[base + k] = static_cast<std::uint32_t>(sim.lane_output(k));
    }
  }
  return TruthTable::from_rows(n_in, n_out, std::move(rows));
}

Characterization characterize(const Netlist& netlist,
                              const std::optional<TruthTable>& reference,
                              std::uint64_t vectors, std::uint64_t seed,
                              const PowerModel& model) {
  Characterization result;
  result.name = netlist.name();
  result.area_ge = netlist.area_ge();
  result.gate_count = netlist.gate_count();
  result.power_nw = estimate_random_power(netlist, vectors, seed, model).total_nw;
  if (reference.has_value()) {
    const TruthTable actual = netlist_truth_table(netlist);
    result.error_cases = actual.error_cases_vs(*reference);
    result.max_error = actual.max_error_vs(*reference);
    result.input_space = actual.row_count();
  }
  return result;
}

Characterization characterize_full_adder(arith::FullAdderKind kind) {
  const Netlist netlist = full_adder_netlist(kind);
  // Reference: the accurate behaviour, outputs packed as {sum, carry}.
  const TruthTable reference = TruthTable::from_function(
      3, 2, [](std::uint32_t w) -> std::uint32_t {
        const unsigned a = w & 1u, b = (w >> 1) & 1u, cin = (w >> 2) & 1u;
        const auto out =
            arith::full_add(arith::FullAdderKind::Accurate, a, b, cin);
        return out.sum | (out.carry << 1);
      });
  return characterize(netlist, reference);
}

Characterization characterize_mul2x2(arith::Mul2x2Kind kind,
                                     bool configurable) {
  // Quality is always judged on the 4-input product function; for the
  // configurable variants we characterize area/power on the full netlist
  // (mode pin included in the random stimulus, as a real workload would
  // toggle it) and quality in approximate mode.
  const TruthTable reference =
      TruthTable::from_function(4, 4, [](std::uint32_t w) -> std::uint32_t {
        const unsigned a = w & 3u;
        const unsigned b = (w >> 2) & 3u;
        return a * b;
      });

  const Netlist netlist =
      configurable ? cfg_mul2x2_netlist(kind) : mul2x2_netlist(kind);
  Characterization result;
  result.name = netlist.name();
  result.area_ge = netlist.area_ge();
  result.gate_count = netlist.gate_count();
  result.power_nw = estimate_random_power(netlist).total_nw;

  // Behavioural quality of the approximate mode.
  const TruthTable behaviour =
      TruthTable::from_function(4, 4, [&](std::uint32_t w) -> std::uint32_t {
        const unsigned a = w & 3u;
        const unsigned b = (w >> 2) & 3u;
        return arith::mul2x2(kind, a, b);
      });
  result.error_cases = behaviour.error_cases_vs(reference);
  result.max_error = behaviour.max_error_vs(reference);
  result.input_space = behaviour.row_count();
  return result;
}

}  // namespace axc::logic
