#include "axc/arith/full_adder.hpp"

#include <gtest/gtest.h>

namespace axc::arith {
namespace {

TEST(FullAdder, AccurateMatchesArithmetic) {
  for (unsigned a = 0; a <= 1; ++a) {
    for (unsigned b = 0; b <= 1; ++b) {
      for (unsigned c = 0; c <= 1; ++c) {
        const auto out = full_add(FullAdderKind::Accurate, a, b, c);
        EXPECT_EQ(out.sum + 2 * out.carry, a + b + c);
      }
    }
  }
}

// Table III, verbatim rows for each approximate variant. Row order is
// (A, B, Cin) and each entry is {sum, carry}.
struct TableIiiCase {
  FullAdderKind kind;
  // Indexed by A*4 + B*2 + Cin.
  unsigned sum[8];
  unsigned carry[8];
};

class TableIii : public ::testing::TestWithParam<TableIiiCase> {};

TEST_P(TableIii, TruthTableMatchesPaper) {
  const auto& c = GetParam();
  for (unsigned row = 0; row < 8; ++row) {
    const unsigned a = (row >> 2) & 1u;
    const unsigned b = (row >> 1) & 1u;
    const unsigned cin = row & 1u;
    const auto out = full_add(c.kind, a, b, cin);
    EXPECT_EQ(out.sum, c.sum[row]) << "row " << row;
    EXPECT_EQ(out.carry, c.carry[row]) << "row " << row;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, TableIii,
    ::testing::Values(
        TableIiiCase{FullAdderKind::Accurate,
                     {0, 1, 1, 0, 1, 0, 0, 1},
                     {0, 0, 0, 1, 0, 1, 1, 1}},
        TableIiiCase{FullAdderKind::Apx1,
                     {0, 1, 0, 0, 0, 0, 0, 1},
                     {0, 0, 1, 1, 0, 1, 1, 1}},
        TableIiiCase{FullAdderKind::Apx2,
                     {1, 1, 1, 0, 1, 0, 0, 0},
                     {0, 0, 0, 1, 0, 1, 1, 1}},
        TableIiiCase{FullAdderKind::Apx3,
                     {1, 1, 0, 0, 1, 0, 0, 0},
                     {0, 0, 1, 1, 0, 1, 1, 1}},
        TableIiiCase{FullAdderKind::Apx4,
                     {0, 1, 0, 1, 0, 0, 0, 1},
                     {0, 0, 0, 0, 1, 1, 1, 1}},
        TableIiiCase{FullAdderKind::Apx5,
                     {0, 0, 1, 1, 0, 0, 1, 1},
                     {0, 0, 0, 0, 1, 1, 1, 1}}),
    [](const auto& info) {
      return std::string(full_adder_name(info.param.kind));
    });

TEST(FullAdder, ErrorCasesMatchTableIii) {
  EXPECT_EQ(full_adder_error_cases(FullAdderKind::Accurate), 0);
  EXPECT_EQ(full_adder_error_cases(FullAdderKind::Apx1), 2);
  EXPECT_EQ(full_adder_error_cases(FullAdderKind::Apx2), 2);
  EXPECT_EQ(full_adder_error_cases(FullAdderKind::Apx3), 3);
  EXPECT_EQ(full_adder_error_cases(FullAdderKind::Apx4), 3);
  EXPECT_EQ(full_adder_error_cases(FullAdderKind::Apx5), 4);
}

TEST(FullAdder, PaperDataMatchesErrorCases) {
  for (const FullAdderKind kind : kAllFullAdderKinds) {
    EXPECT_EQ(paper_full_adder_data(kind).error_cases,
              full_adder_error_cases(kind))
        << full_adder_name(kind);
  }
}

TEST(FullAdder, ApxFa2SumIsInvertedCarry) {
  for (unsigned row = 0; row < 8; ++row) {
    const auto out = full_add(FullAdderKind::Apx2, (row >> 2) & 1u,
                              (row >> 1) & 1u, row & 1u);
    EXPECT_EQ(out.sum, out.carry ^ 1u);
  }
}

TEST(FullAdder, ApxFa3SumIsInvertedCarry) {
  for (unsigned row = 0; row < 8; ++row) {
    const auto out = full_add(FullAdderKind::Apx3, (row >> 2) & 1u,
                              (row >> 1) & 1u, row & 1u);
    EXPECT_EQ(out.sum, out.carry ^ 1u);
  }
}

TEST(FullAdder, ApxFa5IsPureWiring) {
  for (unsigned row = 0; row < 8; ++row) {
    const unsigned a = (row >> 2) & 1u;
    const unsigned b = (row >> 1) & 1u;
    const auto out = full_add(FullAdderKind::Apx5, a, b, row & 1u);
    EXPECT_EQ(out.sum, b);
    EXPECT_EQ(out.carry, a);
  }
}

TEST(FullAdder, NonBitInputRejected) {
  EXPECT_THROW(full_add(FullAdderKind::Accurate, 2, 0, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace axc::arith
