#include "axc/accel/dct.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "axc/common/rng.hpp"

namespace axc::accel {
namespace {

using arith::FullAdderKind;

Block4x4 random_residual(axc::Rng& rng) {
  Block4x4 block{};
  for (auto& sample : block) {
    sample = static_cast<int>(rng.below(511)) - 255;
  }
  return block;
}

TEST(Dct4x4, KnownDcBlock) {
  // Constant block of value v: Y00 = 16 v, all other coefficients 0.
  const Dct4x4 dct(DctConfig{});
  Block4x4 block{};
  block.fill(7);
  const Block4x4 y = dct.forward(block);
  EXPECT_EQ(y[0], 16 * 7);
  for (int i = 1; i < 16; ++i) EXPECT_EQ(y[i], 0) << i;
}

TEST(Dct4x4, MatchesMatrixReference) {
  // Y = C X C^T computed in plain integer arithmetic.
  constexpr int kC[4][4] = {
      {1, 1, 1, 1}, {2, 1, -1, -2}, {1, -1, -1, 1}, {1, -2, 2, -1}};
  const Dct4x4 dct(DctConfig{});
  axc::Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const Block4x4 x = random_residual(rng);
    Block4x4 expect{};
    int cx[4][4] = {};
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        for (int k = 0; k < 4; ++k) cx[i][j] += kC[i][k] * x[k * 4 + j];
      }
    }
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        int v = 0;
        for (int k = 0; k < 4; ++k) v += cx[i][k] * kC[j][k];
        expect[i * 4 + j] = v;
      }
    }
    ASSERT_EQ(dct.forward(x), expect) << "trial " << trial;
  }
}

TEST(Dct4x4, RoundTripExactForward) {
  const Dct4x4 dct(DctConfig{});
  axc::Rng rng(37);
  for (int trial = 0; trial < 500; ++trial) {
    const Block4x4 x = random_residual(rng);
    ASSERT_EQ(Dct4x4::inverse_exact(dct.forward(x)), x) << trial;
  }
}

TEST(Dct4x4, ApproximateForwardDegradesGracefully) {
  const Dct4x4 exact(DctConfig{});
  const Dct4x4 approx(DctConfig{FullAdderKind::Apx3, 3});
  EXPECT_FALSE(approx.is_exact());
  axc::Rng rng(41);
  double mse = 0.0;
  int exact_matches = 0;
  constexpr int kTrials = 2000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const Block4x4 x = random_residual(rng);
    const Block4x4 rec = Dct4x4::inverse_exact(approx.forward(x));
    double block_err = 0.0;
    for (int i = 0; i < 16; ++i) {
      const double d = rec[i] - x[i];
      block_err += d * d;
    }
    mse += block_err / 16.0;
    exact_matches += rec == x;
  }
  mse /= kTrials;
  EXPECT_GT(mse, 0.0);
  // 3 approximated LSBs on a 16-bit datapath: reconstruction error stays
  // far below the signal power (residuals are up to +-255).
  EXPECT_LT(mse, 200.0);
  EXPECT_LT(exact_matches, kTrials);  // approximation is visible
}

TEST(Dct4x4, ReconstructionErrorGrowsWithApproxLsbs) {
  axc::Rng rng(43);
  std::vector<Block4x4> blocks;
  for (int i = 0; i < 300; ++i) blocks.push_back(random_residual(rng));
  double previous = -1.0;
  for (const unsigned lsbs : {0u, 2u, 4u, 6u}) {
    const Dct4x4 dct(DctConfig{FullAdderKind::Apx2, lsbs});
    double mse = 0.0;
    for (const Block4x4& x : blocks) {
      const Block4x4 rec = Dct4x4::inverse_exact(dct.forward(x));
      for (int i = 0; i < 16; ++i) {
        const double d = rec[i] - x[i];
        mse += d * d;
      }
    }
    EXPECT_GE(mse, previous) << "lsbs " << lsbs;
    previous = mse;
  }
}

TEST(Dct4x4, InputRangeValidated) {
  const Dct4x4 dct(DctConfig{});
  Block4x4 block{};
  block[3] = 256;
  EXPECT_THROW(dct.forward(block), std::invalid_argument);
}

TEST(DctConfig, Names) {
  EXPECT_EQ(DctConfig{}.name(), "DCT4x4<Exact>");
  EXPECT_EQ((DctConfig{FullAdderKind::Apx4, 5}).name(), "DCT4x4<ApxFA4 x5>");
}

}  // namespace
}  // namespace axc::accel
