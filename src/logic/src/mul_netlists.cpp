#include "axc/logic/mul_netlists.hpp"

#include <algorithm>
#include <string>

#include "axc/common/require.hpp"
#include "axc/logic/adder_netlists.hpp"

namespace axc::logic {

using arith::FullAdderKind;
using arith::Mul2x2Kind;

std::vector<NetId> add_mul2x2(Netlist& netlist, Mul2x2Kind kind, NetId a0,
                              NetId a1, NetId b0, NetId b1) {
  switch (kind) {
    case Mul2x2Kind::Accurate: {
      // Column-wise exact product: two half-adder columns over the four
      // partial-product AND terms.
      const NetId p0 = netlist.add_gate(CellType::And2, a0, b0);
      const NetId t1 = netlist.add_gate(CellType::And2, a1, b0);
      const NetId t2 = netlist.add_gate(CellType::And2, a0, b1);
      const NetId hh = netlist.add_gate(CellType::And2, a1, b1);
      const NetId p1 = netlist.add_gate(CellType::Xor2, t1, t2);
      const NetId c1 = netlist.add_gate(CellType::And2, t1, t2);
      const NetId p2 = netlist.add_gate(CellType::Xor2, hh, c1);
      const NetId p3 = netlist.add_gate(CellType::And2, hh, c1);
      return {p0, p1, p2, p3};
    }
    case Mul2x2Kind::SoA: {
      // Kulkarni: no 4th bit, and the middle column's carry logic
      // disappears (P1 becomes a plain OR).
      const NetId p0 = netlist.add_gate(CellType::And2, a0, b0);
      const NetId t1 = netlist.add_gate(CellType::And2, a1, b0);
      const NetId t2 = netlist.add_gate(CellType::And2, a0, b1);
      const NetId p1 = netlist.add_gate(CellType::Or2, t1, t2);
      const NetId p2 = netlist.add_gate(CellType::And2, a1, b1);
      const NetId p3 = netlist.add_const(false);
      return {p0, p1, p2, p3};
    }
    case Mul2x2Kind::Ours: {
      // Exact upper bits; P0 is wired to P3, dropping the LSB AND gate.
      const NetId t1 = netlist.add_gate(CellType::And2, a1, b0);
      const NetId t2 = netlist.add_gate(CellType::And2, a0, b1);
      const NetId hh = netlist.add_gate(CellType::And2, a1, b1);
      const NetId p1 = netlist.add_gate(CellType::Xor2, t1, t2);
      const NetId c1 = netlist.add_gate(CellType::And2, t1, t2);
      const NetId p2 = netlist.add_gate(CellType::Xor2, hh, c1);
      const NetId p3 = netlist.add_gate(CellType::And2, hh, c1);
      return {p3, p1, p2, p3};
    }
  }
  require(false, "add_mul2x2: unknown kind");
  return {};
}

namespace {

Netlist make_mul2x2_shell(Mul2x2Kind kind, const std::string& name,
                          bool configurable) {
  Netlist netlist(name);
  const NetId a0 = netlist.add_input("a0");
  const NetId a1 = netlist.add_input("a1");
  const NetId b0 = netlist.add_input("b0");
  const NetId b1 = netlist.add_input("b1");
  std::vector<NetId> p;

  if (!configurable) {
    p = add_mul2x2(netlist, kind, a0, a1, b0, b1);
  } else {
    const NetId mode = netlist.add_input("exact");
    switch (kind) {
      case Mul2x2Kind::Accurate:
        p = add_mul2x2(netlist, kind, a0, a1, b0, b1);
        break;
      case Mul2x2Kind::SoA: {
        // Correction adder: detect 3x3 and add 0b010 through a 3-bit
        // incrementer chain (the "extra addition" of Fig. 5).
        p = add_mul2x2(netlist, Mul2x2Kind::SoA, a0, a1, b0, b1);
        const NetId aa = netlist.add_gate(CellType::And2, a0, a1);
        const NetId bb = netlist.add_gate(CellType::And2, b0, b1);
        const NetId detect = netlist.add_gate(CellType::And2, aa, bb);
        const NetId d = netlist.add_gate(CellType::And2, detect, mode);
        const NetId p1c = netlist.add_gate(CellType::Xor2, p[1], d);
        const NetId c1 = netlist.add_gate(CellType::And2, p[1], d);
        const NetId p2c = netlist.add_gate(CellType::Xor2, p[2], c1);
        const NetId c2 = netlist.add_gate(CellType::And2, p[2], c1);
        p = {p[0], p1c, p2c, c2};
        break;
      }
      case Mul2x2Kind::Ours: {
        // Cheap fixup: the exact LSB is a0&b0; a single mux restores it in
        // exact mode. No carry chain is needed because all three error
        // cases are LSB-only.
        p = add_mul2x2(netlist, Mul2x2Kind::Ours, a0, a1, b0, b1);
        const NetId lsb = netlist.add_gate(CellType::And2, a0, b0);
        const NetId p0c = netlist.add_gate(CellType::Mux2, mode, p[0], lsb);
        p = {p0c, p[1], p[2], p[3]};
        break;
      }
    }
  }
  for (std::size_t i = 0; i < p.size(); ++i) {
    netlist.mark_output(p[i], "p" + std::to_string(i));
  }
  return netlist;
}

}  // namespace

Netlist mul2x2_netlist(Mul2x2Kind kind) {
  return make_mul2x2_shell(kind, std::string(arith::mul2x2_name(kind)),
                           /*configurable=*/false);
}

Netlist cfg_mul2x2_netlist(Mul2x2Kind kind) {
  return make_mul2x2_shell(
      kind, "Cfg" + std::string(arith::mul2x2_name(kind)),
      /*configurable=*/true);
}

namespace {

/// Recursive worker: multiplies net vectors a, b (width w each) and returns
/// the 2w product nets, emitting gates into \p netlist. `significance` is
/// the weight this sub-product's LSB carries in the final product; adder
/// cells below spec.approx_lsbs of *product* significance use the
/// approximate cell — mirroring arith::ApproxMultiplier exactly.
std::vector<NetId> mul_rec(Netlist& netlist, const MulNetlistSpec& spec,
                           std::span<const NetId> a,
                           std::span<const NetId> b, unsigned significance) {
  const unsigned w = static_cast<unsigned>(a.size());
  if (w == 2) {
    return add_mul2x2(netlist, spec.block, a[0], a[1], b[0], b[1]);
  }
  const unsigned half = w / 2;
  const auto al = a.subspan(0, half);
  const auto ah = a.subspan(half, half);
  const auto bl = b.subspan(0, half);
  const auto bh = b.subspan(half, half);

  const std::vector<NetId> ll = mul_rec(netlist, spec, al, bl, significance);
  const std::vector<NetId> lh =
      mul_rec(netlist, spec, al, bh, significance + half);
  const std::vector<NetId> hl =
      mul_rec(netlist, spec, ah, bl, significance + half);
  const std::vector<NetId> hh =
      mul_rec(netlist, spec, ah, bh, significance + w);

  const auto cells_for = [&](unsigned width, unsigned adder_significance) {
    std::vector<FullAdderKind> cells(width, FullAdderKind::Accurate);
    for (unsigned i = 0;
         i < width && adder_significance + i < spec.approx_lsbs; ++i) {
      cells[i] = spec.adder_cell;
    }
    return cells;
  };

  // mid = lh + hl (w-bit adder at weight half, w+1-bit result).
  const NetId zero = netlist.add_const(false);
  const std::vector<NetId> mid = add_ripple_adder(
      netlist, lh, hl, zero, cells_for(w, significance + half));

  // base = hh << w | ll is pure wiring; only bits [w/2, 2w) need an adder
  // (mid lands at weight 2^(w/2)); the low w/2 bits of ll pass through.
  const unsigned upper_width = 2 * w - half;
  std::vector<NetId> upper_base(upper_width);
  for (unsigned i = 0; i < half; ++i) upper_base[i] = ll[half + i];
  for (unsigned i = 0; i < w; ++i) upper_base[half + i] = hh[i];
  std::vector<NetId> mid_padded(upper_width, zero);
  for (unsigned i = 0; i < mid.size(); ++i) mid_padded[i] = mid[i];
  std::vector<NetId> upper =
      add_ripple_adder(netlist, upper_base, mid_padded, zero,
                       cells_for(upper_width, significance + half));

  std::vector<NetId> sum(2 * w);
  for (unsigned i = 0; i < half; ++i) sum[i] = ll[i];
  for (unsigned i = 0; i + half < 2 * w; ++i) sum[half + i] = upper[i];
  return sum;
}

}  // namespace

Netlist multiplier_netlist(const MulNetlistSpec& spec) {
  require(spec.width >= 2 && spec.width <= 16 &&
              (spec.width & (spec.width - 1)) == 0,
          "multiplier_netlist: width must be a power of two in [2, 16]");
  Netlist netlist("Mul" + std::to_string(spec.width) + "x" +
                  std::to_string(spec.width));
  std::vector<NetId> a(spec.width);
  std::vector<NetId> b(spec.width);
  for (unsigned i = 0; i < spec.width; ++i) {
    a[i] = netlist.add_input("a" + std::to_string(i));
  }
  for (unsigned i = 0; i < spec.width; ++i) {
    b[i] = netlist.add_input("b" + std::to_string(i));
  }
  const std::vector<NetId> p = mul_rec(netlist, spec, a, b, 0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    netlist.mark_output(p[i], "p" + std::to_string(i));
  }
  return netlist;
}

Netlist wallace_netlist(unsigned width, FullAdderKind cell,
                        unsigned approx_lsbs) {
  require(width >= 2 && width <= 16,
          "wallace_netlist: width must be in [2, 16]");
  require(approx_lsbs <= 2 * width,
          "wallace_netlist: approx_lsbs exceeds the product width");
  Netlist nl("Wallace" + std::to_string(width) + "x" +
             std::to_string(width));
  std::vector<NetId> a(width);
  std::vector<NetId> b(width);
  for (unsigned i = 0; i < width; ++i) {
    a[i] = nl.add_input("a" + std::to_string(i));
  }
  for (unsigned i = 0; i < width; ++i) {
    b[i] = nl.add_input("b" + std::to_string(i));
  }

  const unsigned columns = 2 * width;
  std::vector<std::vector<NetId>> column(columns);
  for (unsigned i = 0; i < width; ++i) {
    for (unsigned j = 0; j < width; ++j) {
      column[i + j].push_back(nl.add_gate(CellType::And2, a[i], b[j]));
    }
  }
  const auto cell_for = [&](unsigned col) {
    return col < approx_lsbs ? cell : FullAdderKind::Accurate;
  };

  // Column compression, mirroring arith::WallaceMultiplier::multiply —
  // including applying the (possibly approximate) compressor to constant
  // partial products, which the behavioural model also does via
  // full_add(kind, bit, bit, bit); constants here are actual AND gates,
  // so both sides see identical dot diagrams.
  NetId zero = nl.add_const(false);
  for (;;) {
    bool done = true;
    for (const auto& bits : column) done &= bits.size() <= 2;
    if (done) break;
    std::vector<std::vector<NetId>> next(columns);
    for (unsigned c = 0; c < columns; ++c) {
      auto& bits = column[c];
      std::size_t i = 0;
      while (bits.size() - i >= 3) {
        const logic::FaNets out = add_full_adder(nl, cell_for(c), bits[i],
                                                 bits[i + 1], bits[i + 2]);
        next[c].push_back(out.sum);
        if (c + 1 < columns) next[c + 1].push_back(out.carry);
        i += 3;
      }
      if (bits.size() - i == 2 && bits.size() + next[c].size() > 2) {
        const logic::FaNets out =
            add_full_adder(nl, cell_for(c), bits[i], bits[i + 1], zero);
        next[c].push_back(out.sum);
        if (c + 1 < columns) next[c + 1].push_back(out.carry);
        i += 2;
      }
      for (; i < bits.size(); ++i) next[c].push_back(bits[i]);
    }
    column = std::move(next);
  }

  // Final carry-propagate merge.
  NetId carry = zero;
  for (unsigned c = 0; c < columns; ++c) {
    const NetId x = column[c].size() > 0 ? column[c][0] : zero;
    const NetId y = column[c].size() > 1 ? column[c][1] : zero;
    const logic::FaNets out = add_full_adder(nl, cell_for(c), x, y, carry);
    nl.mark_output(out.sum, "p" + std::to_string(c));
    carry = out.carry;
  }
  return nl;
}

}  // namespace axc::logic
