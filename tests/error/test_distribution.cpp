#include "axc/error/distribution.hpp"

#include <gtest/gtest.h>

#include "axc/arith/gear.hpp"

namespace axc::error {
namespace {

using arith::FullAdderKind;
using arith::GeArAdder;
using arith::GeArConfig;
using arith::RippleAdder;

TEST(ErrorDistribution, BasicBookkeeping) {
  ErrorDistribution dist;
  dist.record(0);
  dist.record(0);
  dist.record(-4);
  dist.record(4);
  EXPECT_EQ(dist.samples(), 4u);
  EXPECT_DOUBLE_EQ(dist.probability(0), 0.5);
  EXPECT_DOUBLE_EQ(dist.probability(-4), 0.25);
  EXPECT_DOUBLE_EQ(dist.probability(99), 0.0);
  EXPECT_EQ(dist.support().size(), 3u);
}

TEST(ErrorDistribution, OptimalOffsetIsMedian) {
  ErrorDistribution dist;
  for (int i = 0; i < 10; ++i) dist.record(0);
  for (int i = 0; i < 3; ++i) dist.record(-16);
  EXPECT_EQ(dist.optimal_offset(), 0);  // majority at zero
  // Residual at the median is minimal among candidates.
  EXPECT_LE(dist.residual_med(dist.optimal_offset()),
            dist.residual_med(-16));
  EXPECT_LE(dist.residual_med(dist.optimal_offset()),
            dist.residual_med(-8));
}

TEST(ErrorDistribution, EmptyOffsetRejected) {
  ErrorDistribution dist;
  EXPECT_THROW(dist.optimal_offset(), std::invalid_argument);
}

TEST(AdderErrorDistribution, ExactAdderIsDeltaAtZero) {
  const arith::ExactAdder adder(8);
  const ErrorDistribution dist = adder_error_distribution(adder);
  EXPECT_EQ(dist.support().size(), 1u);
  EXPECT_DOUBLE_EQ(dist.probability(0), 1.0);
}

TEST(AdderErrorDistribution, GearErrorsTakeSpecificValues) {
  // Sec. 6.1's observation: GeAr error magnitudes are restricted to a few
  // specific values (missing carries at sub-adder result boundaries, i.e.
  // multiples of 2^(start_i + P) truncated into the result window).
  const GeArConfig config{8, 2, 2};
  const GeArAdder adder(config);
  const ErrorDistribution dist = adder_error_distribution(adder);
  const auto support = dist.support();
  // Errors must be strictly negative (dropped carries) or zero, and few.
  for (const std::int64_t e : support) EXPECT_LE(e, 0);
  EXPECT_LE(support.size(), 8u);
  EXPECT_GT(dist.probability(0), 0.5);  // mostly correct
}

TEST(AdderErrorDistribution, LsbApproxRippleHasBoundedSupport) {
  const RippleAdder adder =
      RippleAdder::lsb_approximated(8, FullAdderKind::Apx3, 2);
  const ErrorDistribution dist = adder_error_distribution(adder);
  for (const std::int64_t e : dist.support()) {
    EXPECT_LE(std::abs(e), 16);  // errors confined near the approx region
  }
}

TEST(AdderErrorDistribution, SampledPathIsDeterministic) {
  const GeArAdder adder({16, 4, 4});
  const ErrorDistribution a = adder_error_distribution(adder, 22, 50000, 9);
  const ErrorDistribution b = adder_error_distribution(adder, 22, 50000, 9);
  EXPECT_EQ(a.histogram(), b.histogram());
}

// Regression: d.merge(d) used to iterate `other`'s slot table while add()
// could grow() and reallocate the very same table — a use-after-free once
// the open-addressed table sat exactly at the 3/4 growth threshold when
// the merge started. 48 distinct values in the 64-slot initial table get
// there, provided the 48th distinct value arrives on the *final* add (any
// later add would trip the load check and pre-grow the table); the first
// self-merge add() then reallocates mid-iteration on the pre-fix code
// (ASan flags the freed-slot read; release builds read freed memory).
TEST(ErrorDistribution, SelfMergeAtGrowthThresholdDoublesCounts) {
  ErrorDistribution dist;
  for (int v = 1; v <= 47; ++v) {
    for (int r = 0; r < v; ++r) dist.record(v);
  }
  dist.record(48);  // 48th distinct value, last add before the merge
  const auto before = dist.histogram();

  dist.merge(dist);

  EXPECT_EQ(dist.samples(), 2u * (47u * 48u / 2u + 1u));
  EXPECT_EQ(dist.support().size(), 48u);
  for (const auto& [value, count] : before) {
    EXPECT_EQ(dist.histogram().at(value), 2 * count)
        << "value " << value << " not doubled";
  }
}

TEST(ErrorDistribution, SelfMergeMatchesMergingAnEqualCopy) {
  ErrorDistribution dist;
  ErrorDistribution copy;
  for (const int v : {-8, -8, 0, 0, 0, 3}) {
    dist.record(v);
    copy.record(v);
  }
  ErrorDistribution expected = dist;
  expected.merge(copy);
  dist.merge(dist);
  EXPECT_EQ(dist.samples(), expected.samples());
  EXPECT_EQ(dist.histogram(), expected.histogram());
}

// Tie policy on even-mass two-point distributions (documented in
// distribution.hpp): the upper weighted median — the smallest value whose
// cumulative count strictly exceeds samples/2.
TEST(ErrorDistribution, OptimalOffsetTiePicksUpperMedian) {
  ErrorDistribution dist;
  for (int r = 0; r < 50; ++r) dist.record(-4);
  for (int r = 0; r < 50; ++r) dist.record(0);
  EXPECT_EQ(dist.optimal_offset(), 0);
  // Every offset between the two central points minimizes E|error - c|;
  // the returned boundary is one of the minimizers.
  EXPECT_DOUBLE_EQ(dist.residual_med(0), dist.residual_med(-4));
  EXPECT_DOUBLE_EQ(dist.residual_med(0), 2.0);
}

TEST(ErrorDistribution, OptimalOffsetOddMassBreaksTheTie) {
  // One extra sample on either side moves the strict majority — and the
  // offset — to that side.
  ErrorDistribution lower;
  for (int r = 0; r < 50; ++r) lower.record(-4);
  for (int r = 0; r < 49; ++r) lower.record(0);
  EXPECT_EQ(lower.optimal_offset(), -4);

  ErrorDistribution upper;
  for (int r = 0; r < 49; ++r) upper.record(-4);
  for (int r = 0; r < 50; ++r) upper.record(0);
  EXPECT_EQ(upper.optimal_offset(), 0);
}

TEST(ErrorDistribution, OptimalOffsetEvenMassManyPoints) {
  // {-6: 25, -4: 25, 0: 25, 2: 25}: half = 50, cumulative exceeds it first
  // at 0 — the upper central value again.
  ErrorDistribution dist;
  for (int r = 0; r < 25; ++r) dist.record(-6);
  for (int r = 0; r < 25; ++r) dist.record(-4);
  for (int r = 0; r < 25; ++r) dist.record(0);
  for (int r = 0; r < 25; ++r) dist.record(2);
  EXPECT_EQ(dist.optimal_offset(), 0);
  EXPECT_DOUBLE_EQ(dist.residual_med(0), dist.residual_med(-4));
}

}  // namespace
}  // namespace axc::error
