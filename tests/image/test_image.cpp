#include "axc/image/image.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace axc::image {
namespace {

TEST(Image, ConstructionAndAccess) {
  Image img(4, 3, 7);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.at(0, 0), 7);
  img.set(2, 1, 200);
  EXPECT_EQ(img.at(2, 1), 200);
  EXPECT_EQ(img.pixels().size(), 12u);
}

TEST(Image, ClampedAccessPadsEdges) {
  Image img(2, 2);
  img.set(0, 0, 10);
  img.set(1, 0, 20);
  img.set(0, 1, 30);
  img.set(1, 1, 40);
  EXPECT_EQ(img.at_clamped(-5, -5), 10);
  EXPECT_EQ(img.at_clamped(9, 0), 20);
  EXPECT_EQ(img.at_clamped(0, 9), 30);
  EXPECT_EQ(img.at_clamped(9, 9), 40);
}

TEST(Image, DimensionValidation) {
  EXPECT_THROW(Image(0, 5), std::invalid_argument);
  EXPECT_THROW(Image(5, 0), std::invalid_argument);
  EXPECT_THROW(Image(9000, 8), std::invalid_argument);
}

TEST(ImageMetrics, MseAndPsnr) {
  Image a(2, 2, 100);
  Image b = a;
  EXPECT_DOUBLE_EQ(image_mse(a, b), 0.0);
  EXPECT_TRUE(std::isinf(image_psnr(a, b)));
  b.set(0, 0, 110);  // one pixel off by 10: MSE = 100/4 = 25
  EXPECT_DOUBLE_EQ(image_mse(a, b), 25.0);
  EXPECT_NEAR(image_psnr(a, b), 10.0 * std::log10(255.0 * 255.0 / 25.0),
              1e-12);
}

TEST(ImageMetrics, SizeMismatchRejected) {
  Image a(2, 2);
  Image b(3, 2);
  EXPECT_THROW(image_mse(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace axc::image
