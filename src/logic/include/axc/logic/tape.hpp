/// \file tape.hpp
/// Netlist -> straight-line tape compilation.
///
/// The bitsliced interpreter (bitsliced.hpp) walks the gate list and
/// dispatches on the cell type of every gate of every pass — for the
/// workloads this repo serves (exhaustive characterization, error sweeps,
/// SAD batches, the service cold path) that per-cell branch is paid
/// millions of times per netlist. compile_netlist() pays it once: the cell
/// DAG is levelized (topological order over validated structure), ops are
/// sorted so equal cell types become contiguous runs, and the whole
/// netlist is emitted as a flat tape of word ops. Execution
/// (tape_engine.hpp) is then one tight loop per run with the cell function
/// inlined — no per-op switch, no virtual dispatch — over
/// structure-of-arrays lane storage whose word width is a compile-time
/// parameter (std::uint64_t now, LaneBlock<N> SWAR blocks for >64 lanes).
///
/// Levelization doubles as structural validation: combinational cycles and
/// dangling cell inputs — expressible through Netlist::from_parts, never
/// through the incremental builder — fail with a typed AXC_REQUIRE
/// diagnostic instead of silently mis-simulating.
///
/// Tapes are immutable once built and cached process-wide by the
/// netlist's structural_hash(), so structurally identical rebuilds (the
/// characterization and service layers produce many) compile exactly once.
/// Cache traffic is observable as logic.compile.{hits,misses} and fresh
/// compiles record logic.tape.{ops,levels} histograms (obs.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "axc/logic/cell.hpp"
#include "axc/logic/netlist.hpp"

namespace axc::logic {

/// One straight-line word operation: evaluate one cell over input slots,
/// store into the output slot. Slots index the engine's lane-word array
/// (slot == NetId; toggle accounting needs every net's previous value, so
/// slots are never reused). Unused input slots are 0, which always names a
/// valid slot — engines never read out of bounds regardless of fan-in.
struct TapeOp {
  std::uint32_t in0 = 0;
  std::uint32_t in1 = 0;
  std::uint32_t in2 = 0;
  std::uint32_t out = 0;
};

/// A maximal run of consecutive tape ops sharing one cell type. The
/// executor dispatches once per run and then loops branch-free; within a
/// run ops execute in order, so runs may legally span level boundaries
/// (the op order stays topological).
struct TapeRun {
  CellType type = CellType::Buf;
  std::uint32_t begin = 0;  ///< first op index
  std::uint32_t end = 0;    ///< one past the last op index
};

/// The compiled form of one netlist. Immutable after compile_netlist()
/// returns it; engines hold it by shared_ptr, so one tape serves any
/// number of concurrent engines (each engine owns only its lane state).
struct Tape {
  /// Ops in execution order: sorted by (level, cell type, gate index), so
  /// the order is topological and equal opcodes are contiguous.
  std::vector<TapeOp> ops;
  std::vector<TapeRun> runs;
  /// Gate index (Netlist::gates() order) -> op index. Toggle counters are
  /// accumulated per op in tape order (sequential writes); this is the map
  /// back to the interpreter's per-gate view.
  std::vector<std::uint32_t> op_of_gate;
  /// Per-gate switching energy (gate order) — lets engines reproduce
  /// BitslicedSimulator::switched_energy_fj() with the exact same
  /// floating-point summation order, hence byte-identical totals.
  std::vector<double> gate_energy_fj;
  std::vector<std::uint32_t> input_slots;      ///< Netlist::inputs()
  std::vector<std::uint32_t> output_slots;     ///< Netlist::outputs()
  std::vector<std::uint32_t> const_one_slots;  ///< Const1 nets (tie-high)
  std::uint32_t slot_count = 0;  ///< lane words per engine (== net_count)
  std::uint32_t level_count = 0; ///< logic depth of the levelized DAG
  std::uint64_t structural_hash = 0;
};

/// Levelization result: per-net logic level (primary inputs and constants
/// are level 0, a gate's output is 1 + max over its input levels).
struct Levelization {
  std::vector<std::uint32_t> level_of_net;
  std::uint32_t level_count = 0;  ///< max level + 1 (1 for gate-free nets)
};

/// Validates \p netlist's structure and computes logic levels. Throws a
/// typed AXC_REQUIRE diagnostic (std::invalid_argument with file:line and
/// the failed expression) on: input nets out of range, gates driving nets
/// whose recorded kind disagrees, multiply-driven or undriven cell nets
/// (dangling), primary inputs/outputs naming bad nets, and combinational
/// cycles. Netlists built through the incremental API always pass; this
/// is the validation gate for Netlist::from_parts.
Levelization levelize(const Netlist& netlist);

/// Compiles \p netlist to a tape, memoized process-wide on
/// structural_hash(). Thread-safe; a cached tape is shared, a fresh
/// compile levelizes (validating — see levelize()) and emits. A hash
/// collision (cached tape's shape disagrees with the netlist) degrades to
/// an uncached fresh compile rather than returning a wrong tape.
std::shared_ptr<const Tape> compile_netlist(const Netlist& netlist);

/// Hit/miss counters of the process-wide tape cache (mirrored into the
/// obs registry as logic.compile.{hits,misses}).
struct CompileCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};
CompileCacheStats compile_cache_stats();

/// Drops every cached tape and resets the counters (tests; engines keep
/// their shared_ptr-held tapes alive independently).
void clear_compile_cache();

/// Which execution engine a BitslicedSimulator uses for its gate pass.
enum class SimEngine {
  Compiled,   ///< straight-line tape (compile_netlist + tape_engine.hpp)
  Bitsliced,  ///< the per-gate dispatch interpreter loop
};

const char* to_string(SimEngine engine);

/// Process-default engine: the AXC_ENGINE environment variable at first
/// use ("compiled" | "bitsliced"; anything else throws), Compiled when
/// unset. set_default_sim_engine overrides for the rest of the process
/// (A/B benches and the equivalence tests flip it).
SimEngine default_sim_engine();
void set_default_sim_engine(SimEngine engine);

}  // namespace axc::logic
