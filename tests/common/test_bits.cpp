#include "axc/common/bits.hpp"

#include <gtest/gtest.h>

namespace axc {
namespace {

TEST(Bits, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 0x1u);
  EXPECT_EQ(low_mask(8), 0xFFu);
  EXPECT_EQ(low_mask(63), 0x7FFFFFFFFFFFFFFFull);
  EXPECT_EQ(low_mask(64), ~std::uint64_t{0});
}

TEST(Bits, BitOf) {
  EXPECT_EQ(bit_of(0b1010, 0), 0u);
  EXPECT_EQ(bit_of(0b1010, 1), 1u);
  EXPECT_EQ(bit_of(0b1010, 3), 1u);
  EXPECT_EQ(bit_of(std::uint64_t{1} << 63, 63), 1u);
}

TEST(Bits, WithBit) {
  EXPECT_EQ(with_bit(0, 3, 1), 0b1000u);
  EXPECT_EQ(with_bit(0b1111, 2, 0), 0b1011u);
  EXPECT_EQ(with_bit(0b1011, 2, 1), 0b1111u);
}

TEST(Bits, BitField) {
  EXPECT_EQ(bit_field(0xABCD, 4, 8), 0xBCu);
  EXPECT_EQ(bit_field(0xABCD, 0, 4), 0xDu);
  EXPECT_EQ(bit_field(0xABCD, 12, 4), 0xAu);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0xFF, 8), -1);
  EXPECT_EQ(sign_extend(0x7F, 8), 127);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0x1FF, 9), -1);
}

// Round-trip property: setting then reading any bit of any word.
TEST(Bits, WithBitReadBackProperty) {
  std::uint64_t word = 0x123456789ABCDEFull;
  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_EQ(bit_of(with_bit(word, i, 1), i), 1u);
    EXPECT_EQ(bit_of(with_bit(word, i, 0), i), 0u);
  }
}

}  // namespace
}  // namespace axc
