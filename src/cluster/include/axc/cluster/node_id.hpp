/// \file node_id.hpp
/// 160-bit node/key identifiers of the axc cluster ring.
///
/// The distributed tier shards the design-space service by *canonical
/// request identity*: every request already has exactly one byte
/// representation minus its deadline (protocol.hpp), so hashing those
/// bytes into a 160-bit key and assigning each server node a segment of
/// the key space makes request routing a pure function — any client, on
/// any machine, maps the same request to the same owning node, with no
/// coordination service in the loop.
///
/// Identifiers follow the Kademlia discipline: distance between two ids
/// is their bitwise XOR compared as a 160-bit big-endian integer, and a
/// node's segment is a *prefix range* — a stencil id plus the number of
/// leading bits that are fixed (NodeIdRange, after the stencil/mask
/// partitioning of SNIPPETS.md snippet 1). Prefix ranges nest cleanly
/// (reduced(0)/reduced(1) split a range in half), which is what lets a
/// static ring of N nodes cover the space exactly for any N, and XOR
/// distance agrees with prefix ownership: the node whose range contains a
/// key is always the XOR-closest range stencil, so "owner" and "closest
/// replica list" come from one ordering.
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace axc::cluster {

/// A 160-bit identifier. Bit 0 is the most significant bit of bytes[0]
/// (big-endian bit order), so lexicographic byte comparison is numeric
/// comparison and "first differing bit" is the longest-common-prefix
/// length.
struct NodeId {
  std::array<std::uint8_t, 20> bytes{};

  static constexpr std::size_t kBits = 160;

  static NodeId zero() { return NodeId{}; }

  bool bit(std::size_t index) const {
    return (bytes[index / 8] >> (7 - index % 8)) & 1u;
  }

  void set_bit(std::size_t index, bool value) {
    const std::uint8_t mask =
        static_cast<std::uint8_t>(1u << (7 - index % 8));
    if (value) {
      bytes[index / 8] |= mask;
    } else {
      bytes[index / 8] &= static_cast<std::uint8_t>(~mask);
    }
  }

  auto operator<=>(const NodeId&) const = default;

  /// 40 lowercase hex digits (diagnostics, ring dumps).
  std::string to_hex() const;
};

/// Kademlia XOR metric: distance(a, b) = a ^ b as a 160-bit integer.
NodeId xor_distance(const NodeId& a, const NodeId& b);

/// Index of the first set bit (= 160 for the zero id); equivalently the
/// longest common prefix of the two ids XORed into this distance.
std::size_t leading_zero_bits(const NodeId& id);

/// A prefix segment of the key space: every id whose first \p mask bits
/// equal the stencil's. mask == 0 is the whole space. The stencil's bits
/// at and beyond \p mask are zero, so the stencil is also the numerically
/// smallest id in the range — which the static ring uses as the owning
/// node's id.
struct NodeIdRange {
  NodeId stencil;
  std::size_t mask = 0;

  /// The whole key space (snippet 1's max()).
  static NodeIdRange all() { return NodeIdRange{NodeId::zero(), 0}; }

  bool contains(const NodeId& id) const {
    return leading_zero_bits(xor_distance(id, stencil)) >= mask;
  }

  /// Halves the range: fixes one more bit to \p bit. reduced(0) keeps the
  /// lower half (same stencil), reduced(1) the upper.
  NodeIdRange reduced(bool bit) const {
    NodeIdRange out{stencil, mask};
    out.stencil.set_bit(out.mask, bit);
    ++out.mask;
    return out;
  }

  auto operator<=>(const NodeIdRange&) const = default;
};

/// Expands a canonical request byte string (protocol.hpp) into its
/// 160-bit ring key, deterministically: the 64-bit canonical_request_key
/// seeds a SplitMix-style chain (logic::detail::mix_key — the one mixing
/// discipline every cache in the system shares) whose words fill the id
/// big-endian. Same canonical bytes -> same key, on every node and every
/// client.
NodeId key_for_canonical(std::span<const std::uint8_t> canonical);

}  // namespace axc::cluster
