#include "axc/resilience/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "axc/accel/sad.hpp"
#include "axc/common/rng.hpp"
#include "axc/logic/adder_netlists.hpp"
#include "axc/logic/simulator.hpp"

namespace axc::resilience {
namespace {

TEST(FaultInjector, ZeroProbabilityIsTransparent) {
  FaultInjector injector({0.0, 42});
  for (std::uint64_t w : {std::uint64_t{0}, std::uint64_t{0xDEADBEEF},
                          ~std::uint64_t{0}}) {
    EXPECT_EQ(injector.corrupt(w, 32), w & 0xFFFFFFFFu);
  }
  EXPECT_EQ(injector.bits_flipped(), 0u);
  EXPECT_EQ(injector.words_corrupted(), 0u);
}

TEST(FaultInjector, CertainFlipInvertsEveryBit) {
  FaultInjector injector({1.0, 7});
  EXPECT_EQ(injector.corrupt(0, 8), 0xFFu);
  EXPECT_EQ(injector.corrupt(0xA5, 8), 0x5Au);
  EXPECT_EQ(injector.bits_flipped(), 16u);
  EXPECT_EQ(injector.words_corrupted(), 2u);
}

TEST(FaultInjector, SeededCampaignsReproduce) {
  FaultInjector lhs({0.25, 99});
  FaultInjector rhs({0.25, 99});
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t word = static_cast<std::uint64_t>(i) * 0x9E37u;
    ASSERT_EQ(lhs.corrupt(word, 16), rhs.corrupt(word, 16)) << i;
  }
  EXPECT_EQ(lhs.bits_flipped(), rhs.bits_flipped());
  EXPECT_GT(lhs.bits_flipped(), 0u);
}

TEST(FaultInjector, ReseedRestartsTheProcess) {
  FaultInjector injector({0.5, 5});
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 64; ++i) first.push_back(injector.corrupt(0, 16));
  injector.reseed(5);
  EXPECT_EQ(injector.bits_flipped(), 0u);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(injector.corrupt(0, 16), first[static_cast<std::size_t>(i)]);
  }
}

TEST(FaultInjector, FlipRateTracksProbability) {
  FaultInjector injector({0.1, 11});
  constexpr int kWords = 20000;
  for (int i = 0; i < kWords; ++i) injector.corrupt(0, 16);
  const double rate = static_cast<double>(injector.bits_flipped()) /
                      (16.0 * kWords);
  EXPECT_NEAR(rate, 0.1, 0.01);
}

TEST(FaultInjector, RejectsInvalidProbability) {
  EXPECT_THROW(FaultInjector({-0.1, 1}), std::invalid_argument);
  EXPECT_THROW(FaultInjector({1.5, 1}), std::invalid_argument);
}

TEST(FaultySimulator, FaultFreeMatchesPlainSimulator) {
  const logic::Netlist netlist = logic::loa_adder_netlist(8, 2);
  FaultySimulator faulty(netlist, {0.0, 3});
  logic::Simulator plain(netlist);
  Rng rng(31);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t word = rng.bits(17);
    ASSERT_EQ(faulty.apply_word(word), plain.apply_word(word));
  }
  EXPECT_EQ(faulty.faults_injected(), 0u);
}

TEST(FaultySimulator, GateUpsetsPerturbOutputs) {
  const logic::Netlist netlist = logic::loa_adder_netlist(8, 0);
  FaultySimulator faulty(netlist, {0.05, 17});
  logic::Simulator plain(netlist);
  Rng rng(32);
  int differing = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t word = rng.bits(17);
    differing += faulty.apply_word(word) != plain.apply_word(word);
  }
  EXPECT_GT(differing, 0);
  EXPECT_LT(differing, 2000);
  EXPECT_GT(faulty.faults_injected(), 0u);
}

TEST(FaultySimulator, SeededRunsAreDeterministic) {
  const logic::Netlist netlist = logic::loa_adder_netlist(6, 1);
  FaultySimulator lhs(netlist, {0.1, 77});
  FaultySimulator rhs(netlist, {0.1, 77});
  Rng rng(33);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t word = rng.bits(13);
    ASSERT_EQ(lhs.apply_word(word), rhs.apply_word(word)) << i;
  }
}

accel::Datapath small_sad_datapath() {
  accel::Datapath dp("sad4");
  build_sad_datapath(dp, 4);
  return dp;
}

TEST(DatapathFaults, FaultFreeHookMatchesEvaluate) {
  const accel::Datapath dp = small_sad_datapath();
  FaultInjector injector({0.0, 1});
  const std::vector<std::uint64_t> inputs = {10, 200, 30, 40,
                                             12, 190, 35, 38};
  EXPECT_EQ(evaluate_with_faults(dp, inputs, injector), dp.evaluate(inputs));
}

TEST(DatapathFaults, NodeUpsetsChangeTheSum) {
  const accel::Datapath dp = small_sad_datapath();
  FaultInjector injector({0.05, 23});
  const std::vector<std::uint64_t> inputs = {10, 200, 30, 40,
                                             12, 190, 35, 38};
  const std::uint64_t golden = dp.evaluate(inputs).front();
  int differing = 0;
  for (int i = 0; i < 500; ++i) {
    differing += evaluate_with_faults(dp, inputs, injector).front() != golden;
  }
  EXPECT_GT(differing, 0);
  EXPECT_GT(injector.bits_flipped(), 0u);
}

TEST(FaultySad, FaultFreeWrapsTransparently) {
  const accel::SadAccelerator inner(accel::accu_sad(16));
  const FaultySad faulty(inner, {0.0, 9});
  EXPECT_EQ(faulty.block_pixels(), 16u);
  EXPECT_EQ(faulty.name(), "Faulty<" + inner.name() + ">");
  EXPECT_FALSE(faulty.is_exact());
  Rng rng(41);
  std::vector<std::uint8_t> a(16), b(16);
  for (int i = 0; i < 200; ++i) {
    for (auto& px : a) px = static_cast<std::uint8_t>(rng.bits(8));
    for (auto& px : b) px = static_cast<std::uint8_t>(rng.bits(8));
    ASSERT_EQ(faulty.sad(a, b), inner.sad(a, b));
  }
  EXPECT_EQ(faulty.faults_injected(), 0u);
}

TEST(FaultySad, ResultWordUpsetsAreSeededAndVisible) {
  const accel::SadAccelerator inner(accel::accu_sad(16));
  const FaultySad lhs(inner, {0.08, 1234});
  const FaultySad rhs(inner, {0.08, 1234});
  Rng rng(42);
  std::vector<std::uint8_t> a(16), b(16);
  int differing = 0;
  for (int i = 0; i < 500; ++i) {
    for (auto& px : a) px = static_cast<std::uint8_t>(rng.bits(8));
    for (auto& px : b) px = static_cast<std::uint8_t>(rng.bits(8));
    const std::uint64_t faulted = lhs.sad(a, b);
    ASSERT_EQ(faulted, rhs.sad(a, b)) << "fault campaign must be seeded";
    differing += faulted != inner.sad(a, b);
  }
  EXPECT_GT(differing, 0);
  EXPECT_GT(lhs.faults_injected(), 0u);
}

}  // namespace
}  // namespace axc::resilience
