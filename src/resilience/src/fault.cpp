#include "axc/resilience/fault.hpp"

#include <bit>

#include "axc/common/bits.hpp"
#include "axc/common/require.hpp"
#include "axc/logic/cell.hpp"

namespace axc::resilience {

FaultInjector::FaultInjector(const FaultSpec& spec)
    : spec_(spec), rng_(spec.seed) {
  AXC_REQUIRE(spec.bit_flip_probability >= 0.0 &&
                  spec.bit_flip_probability <= 1.0,
              "FaultInjector: bit_flip_probability must be in [0, 1]");
}

std::uint64_t FaultInjector::corrupt(std::uint64_t word, unsigned width) {
  AXC_REQUIRE(width >= 1 && width <= 64,
              "FaultInjector::corrupt: width must be in [1, 64]");
  word &= low_mask(width);
  if (spec_.bit_flip_probability <= 0.0) return word;
  std::uint64_t flips = 0;
  for (unsigned bit = 0; bit < width; ++bit) {
    if (rng_.uniform() < spec_.bit_flip_probability) {
      flips |= std::uint64_t{1} << bit;
    }
  }
  if (flips != 0) {
    bits_flipped_ += static_cast<std::uint64_t>(std::popcount(flips));
    ++words_corrupted_;
  }
  return word ^ flips;
}

void FaultInjector::reseed(std::uint64_t seed) {
  spec_.seed = seed;
  rng_.reseed(seed);
  bits_flipped_ = 0;
  words_corrupted_ = 0;
}

FaultySimulator::FaultySimulator(const logic::Netlist& netlist,
                                 const FaultSpec& spec)
    : netlist_(netlist), injector_(spec), net_value_(netlist.net_count(), 0) {}

std::vector<unsigned> FaultySimulator::apply(
    std::span<const unsigned> input_bits) {
  const auto& inputs = netlist_.inputs();
  AXC_REQUIRE(input_bits.size() == inputs.size(),
              "FaultySimulator::apply: input vector arity mismatch");
  // Stimuli and tie cells are applied clean; upsets strike the logic.
  for (logic::NetId net = 0; net < net_value_.size(); ++net) {
    const logic::CellType kind = netlist_.driver(net);
    if (kind == logic::CellType::Const0) net_value_[net] = 0;
    if (kind == logic::CellType::Const1) net_value_[net] = 1;
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    net_value_[inputs[i]] = input_bits[i] & 1u;
  }
  for (const logic::Gate& gate : netlist_.gates()) {
    const unsigned value = logic::eval_cell(
        gate.type, net_value_[gate.in[0]], net_value_[gate.in[1]],
        net_value_[gate.in[2]]);
    net_value_[gate.out] =
        static_cast<unsigned>(injector_.corrupt(value, 1));
  }
  std::vector<unsigned> out;
  out.reserve(netlist_.outputs().size());
  for (const logic::NetId net : netlist_.outputs()) {
    out.push_back(net_value_[net]);
  }
  return out;
}

std::uint64_t FaultySimulator::apply_word(std::uint64_t input_word) {
  const std::size_t n_in = netlist_.inputs().size();
  const std::size_t n_out = netlist_.outputs().size();
  AXC_REQUIRE(n_in <= 64 && n_out <= 64,
              "FaultySimulator::apply_word: needs <= 64 inputs/outputs");
  std::vector<unsigned> bits(n_in);
  for (std::size_t i = 0; i < n_in; ++i) {
    bits[i] = bit_of(input_word, static_cast<unsigned>(i));
  }
  const std::vector<unsigned> out = apply(bits);
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    word |= static_cast<std::uint64_t>(out[i] & 1u) << i;
  }
  return word;
}

std::vector<std::uint64_t> evaluate_with_faults(
    const accel::Datapath& dp, std::vector<std::uint64_t> input_values,
    FaultInjector& injector) {
  return dp.evaluate_with_hook(
      std::move(input_values),
      [&injector](accel::NodeId, unsigned width, std::uint64_t value) {
        return injector.corrupt(value, width);
      });
}

FaultySad::FaultySad(const accel::SadUnit& inner, const FaultSpec& spec)
    : inner_(inner),
      result_width_(static_cast<unsigned>(
          std::bit_width(std::uint64_t{inner.block_pixels()} * 255u))),
      injector_(spec) {}

std::uint64_t FaultySad::sad(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b) const {
  return injector_.corrupt(inner_.sad(a, b), result_width_);
}

std::string FaultySad::name() const { return "Faulty<" + inner_.name() + ">"; }

}  // namespace axc::resilience
