/// \file obs.hpp
/// Cross-layer observability: named counters, value histograms and RAII
/// span timers behind one process-wide registry.
///
/// The paper's methodology (Fig. 2, Fig. 7) navigates quality/effort
/// trade-offs from *measured* data; this subsystem is how the reproduction
/// surfaces that data at runtime — cache hit rates, bitsliced lane
/// occupancy, chunks scheduled, faults injected, guardband trips — without
/// perturbing the measured system:
///
///  - Hot paths are relaxed atomics on pre-resolved handles. Call sites
///    resolve a handle once (function-local static) and then never touch
///    the registry lock again.
///  - A kill switch reduces instrumentation to a relaxed load + branch:
///    set the environment variable AXC_OBS=0 (or off/false), call
///    set_enabled(false), or compile with AXC_OBS_FORCE_DISABLED=1 to
///    remove even that.
///  - Aggregation is deterministic: every deterministic quantity is an
///    integer accumulated with commutative adds and snapshots iterate the
///    registry in name order, so the deterministic report section is
///    byte-identical at 1 or N worker threads (wall-clock span timings are
///    segregated into an optional, explicitly nondeterministic section —
///    see report.hpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace axc::obs {

namespace detail {
/// Tri-state runtime switch: -1 = consult AXC_OBS lazily, 0/1 = forced.
extern std::atomic<int> g_enabled;
/// Reads AXC_OBS once and latches the result into g_enabled.
bool init_enabled_from_env();
}  // namespace detail

/// True when instrumentation is live. The hot-path cost of a disabled
/// counter/span is exactly this call: one relaxed load and a branch.
inline bool enabled() noexcept {
#if defined(AXC_OBS_FORCE_DISABLED) && AXC_OBS_FORCE_DISABLED
  return false;
#else
  const int state = detail::g_enabled.load(std::memory_order_relaxed);
  if (state >= 0) return state != 0;
  return detail::init_enabled_from_env();
#endif
}

/// Overrides the AXC_OBS environment default for the rest of the process
/// (tests and the bench overhead measurement toggle this).
void set_enabled(bool on) noexcept;

/// Monotonically increasing named event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Distribution of a signed integer quantity (lane counts, block bits,
/// error magnitudes): exact count/sum/min/max plus power-of-two buckets.
/// Bucket k holds values v with bit_width(v) == k, i.e. v in
/// [2^(k-1), 2^k - 1]; bucket 0 holds v <= 0. All fields are commutative
/// integer accumulations, so concurrent recording is deterministic.
class Histogram {
 public:
  static constexpr int kBuckets = 65;  ///< bucket 0 + one per bit width

  void record(std::int64_t value, std::uint64_t weight = 1) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::int64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Minimum / maximum recorded value; min() > max() means "no samples".
  std::int64_t min() const noexcept {
    return min_.load(std::memory_order_relaxed);
  }
  std::int64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(int index) const noexcept {
    return buckets_[static_cast<std::size_t>(index)].load(
        std::memory_order_relaxed);
  }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum()) / static_cast<double>(n);
  }
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{INT64_MAX};
  std::atomic<std::int64_t> max_{INT64_MIN};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Accumulated wall-clock statistics of one named span. Timings are
/// inherently nondeterministic, so the report writer segregates these into
/// the optional "timings" section.
class SpanStat {
 public:
  void record_ns(std::uint64_t ns) noexcept;

  std::uint64_t calls() const noexcept {
    return calls_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t max_ns() const noexcept {
    return max_ns_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// RAII timer: measures the enclosing scope into a SpanStat. When obs is
/// disabled at construction the clock is never read.
class Span {
 public:
  explicit Span(SpanStat& stat) noexcept
      : stat_(enabled() ? &stat : nullptr) {
    if (stat_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~Span() {
    if (stat_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start_);
    stat_->record_ns(static_cast<std::uint64_t>(ns.count()));
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  SpanStat* stat_;
  std::chrono::steady_clock::time_point start_;
};

/// Resolves (registering on first use) the instrument with \p name. The
/// returned reference is stable for the process lifetime; call sites cache
/// it in a function-local static so the registry mutex is taken once.
/// Names are dot-separated, lowercase, layer-first: "logic.sim.passes".
Counter& counter(std::string_view name);
Histogram& histogram(std::string_view name);
SpanStat& span(std::string_view name);

/// Zeroes every registered instrument (registrations persist). Meant for
/// tests and report-scoped bench sections; not synchronized against
/// concurrent recorders.
void reset();

/// Point-in-time copy of the registry, iterated in name order.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  ///< meaningful only when count > 0
  std::int64_t max = 0;  ///< meaningful only when count > 0
  std::uint64_t buckets[Histogram::kBuckets] = {};
};
struct SpanSnapshot {
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, SpanSnapshot> spans;
};
Snapshot snapshot();

}  // namespace axc::obs
