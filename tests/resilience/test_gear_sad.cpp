#include "axc/resilience/gear_sad.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "axc/accel/sad.hpp"
#include "axc/common/rng.hpp"

namespace axc::resilience {
namespace {

std::uint64_t reference_sad(std::span<const std::uint8_t> a,
                            std::span<const std::uint8_t> b) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += static_cast<std::uint64_t>(std::abs(int(a[i]) - int(b[i])));
  }
  return sum;
}

TEST(GearConfigForWidth, PreservesRAndTilesAnyWidth) {
  const arith::GeArConfig base{8, 2, 2};
  for (unsigned width = 4; width <= 16; ++width) {
    const arith::GeArConfig derived = gear_config_for_width(base, width);
    ASSERT_TRUE(derived.is_valid()) << "width " << width;
    EXPECT_EQ(derived.n, width);
    if (width <= base.l()) {
      EXPECT_TRUE(derived.is_exact()) << "width " << width;
    } else {
      EXPECT_EQ(derived.r, base.r) << "width " << width;
      EXPECT_GE(derived.p, base.p) << "width " << width;
      EXPECT_LT(derived.p, base.p + base.r) << "width " << width;
    }
  }
}

TEST(GearSad, ExactBaseConfigMatchesReferenceSad) {
  // L == N makes every constituent adder a single exact window.
  const GearSad sad(16, {8, 4, 4});
  EXPECT_TRUE(sad.is_exact());
  Rng rng(51);
  std::vector<std::uint8_t> a(16), b(16);
  for (int i = 0; i < 500; ++i) {
    for (auto& px : a) px = static_cast<std::uint8_t>(rng.bits(8));
    for (auto& px : b) px = static_cast<std::uint8_t>(rng.bits(8));
    ASSERT_EQ(sad.sad(a, b), reference_sad(a, b));
  }
}

TEST(GearSad, FullCorrectionIsExactEvenForAggressiveConfig) {
  const arith::GeArConfig base{8, 2, 2};
  // The widest tree adder determines the worst-case sub-adder count; its
  // k-1 is a safe (over-)estimate for every narrower adder in the tree.
  const GearSad sad(64, base, 16);
  EXPECT_TRUE(sad.is_exact());
  Rng rng(52);
  std::vector<std::uint8_t> a(64), b(64);
  for (int i = 0; i < 300; ++i) {
    for (auto& px : a) px = static_cast<std::uint8_t>(rng.bits(8));
    for (auto& px : b) px = static_cast<std::uint8_t>(rng.bits(8));
    ASSERT_EQ(sad.sad(a, b), reference_sad(a, b));
  }
}

TEST(GearSad, CorrectionIterationsMonotonicallyReduceError) {
  const arith::GeArConfig base{8, 2, 2};
  Rng rng(53);
  std::vector<std::vector<std::uint8_t>> blocks_a, blocks_b;
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint8_t> a(64), b(64);
    for (auto& px : a) px = static_cast<std::uint8_t>(rng.bits(8));
    for (auto& px : b) px = static_cast<std::uint8_t>(rng.bits(8));
    blocks_a.push_back(std::move(a));
    blocks_b.push_back(std::move(b));
  }
  std::vector<double> med;
  for (const unsigned corr : {0u, 1u, 2u, 3u, 16u}) {
    const GearSad sad(64, base, corr);
    double sum = 0.0;
    for (std::size_t i = 0; i < blocks_a.size(); ++i) {
      const std::uint64_t approx = sad.sad(blocks_a[i], blocks_b[i]);
      const std::uint64_t exact = reference_sad(blocks_a[i], blocks_b[i]);
      sum += static_cast<double>(approx > exact ? approx - exact
                                                : exact - approx);
    }
    med.push_back(sum / static_cast<double>(blocks_a.size()));
  }
  // Raising the CEC iteration count is the controller's cheapest
  // escalation lever: it must buy real accuracy, and enough iterations
  // must reach exactness.
  EXPECT_GT(med[0], 0.0);
  EXPECT_LT(med[1], med[0]);
  EXPECT_LT(med[3], med[0]);
  EXPECT_EQ(med[4], 0.0);
}

TEST(GearSad, NameEncodesConfigCorrectionAndGeometry) {
  EXPECT_EQ(GearSad(64, {8, 2, 2}, 1).name(),
            "GeArSAD<GeAr(N=8,R=2,P=2)+CEC1,8x8>");
  EXPECT_EQ(GearSad(16, {8, 4, 4}).name(), "GeArSAD<GeAr(N=8,R=4,P=4),4x4>");
}

TEST(GearSad, Validation) {
  EXPECT_THROW(GearSad(0, {8, 2, 2}), std::invalid_argument);
  EXPECT_THROW(GearSad(3, {8, 2, 2}), std::invalid_argument);  // not 2^k
  EXPECT_THROW(GearSad(64, {8, 3, 3}), std::invalid_argument);  // invalid
  EXPECT_THROW(GearSad(64, {16, 2, 2}), std::invalid_argument);  // not 8-bit
  const GearSad sad(16, {8, 2, 2});
  std::vector<std::uint8_t> wrong(8), right(16);
  EXPECT_THROW(sad.sad(wrong, right), std::invalid_argument);
  EXPECT_THROW(sad.sad(right, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace axc::resilience
