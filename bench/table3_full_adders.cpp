/// Regenerates Table III: truth tables and characterization (area [GE],
/// power [nW], #error cases) of the 1-bit full-adder library.
///
/// Paper values come from an industrial 65nm-class flow (Design Compiler +
/// PrimeTime); ours from the in-repo standard-cell substrate, with the
/// power model calibrated once on AccuFA (power.cpp). Absolute deltas are
/// expected; orderings and the zero-cost ApxFA5 row must (and do) match.
#include <iostream>

#include "axc/arith/full_adder.hpp"
#include "axc/logic/characterize.hpp"
#include "bench_util.hpp"

int main() {
  using namespace axc;
  using arith::FullAdderKind;
  bench::banner("Table III", "1-bit approximate full adders (IMPACT)");

  // Truth tables, exactly as printed in the paper.
  {
    Table truth({"A", "B", "Cin", "AccuFA", "ApxFA1", "ApxFA2", "ApxFA3",
                 "ApxFA4", "ApxFA5"});
    for (unsigned row = 0; row < 8; ++row) {
      const unsigned a = (row >> 2) & 1u;
      const unsigned b = (row >> 1) & 1u;
      const unsigned cin = row & 1u;
      std::vector<std::string> cells = {std::to_string(a), std::to_string(b),
                                        std::to_string(cin)};
      for (const FullAdderKind kind : arith::kAllFullAdderKinds) {
        const auto out = arith::full_add(kind, a, b, cin);
        cells.push_back(std::to_string(out.sum) + " " +
                        std::to_string(out.carry));
      }
      truth.add_row(std::move(cells));
    }
    std::cout << "\nTruth tables (Sum Cout):\n";
    truth.print(std::cout);
  }

  // Characterization vs the paper's reported numbers.
  Table table({"Design", "Area [GE] (ours vs paper)",
               "Power [nW] (ours vs paper)", "#Error cases (ours/paper)"});
  for (const FullAdderKind kind : arith::kAllFullAdderKinds) {
    const auto ours = logic::characterize_full_adder(kind);
    const auto paper = arith::paper_full_adder_data(kind);
    table.add_row({std::string(arith::full_adder_name(kind)),
                   bench::vs_paper(paper.area_ge, ours.area_ge),
                   bench::vs_paper(paper.power_nw, ours.power_nw, 0),
                   std::to_string(ours.error_cases) + "/" +
                       std::to_string(paper.error_cases)});
  }
  std::cout << "\nCharacterization (this substrate vs paper):\n";
  table.print(std::cout);
  std::cout << "Note: our areas come from the hand-mapped structural\n"
               "netlists on a NAND2-normalized cell library; the paper's\n"
               "from transistor-level IMPACT mirror-adder variants. The\n"
               "orderings (AccuFA largest, ApxFA5 zero) are the claims\n"
               "that carry over.\n";
  return 0;
}
