/// Component-library survey: every adder family in the library — IMPACT
/// ripple chains (Sec. 4.1), GeAr and the prior art it generalizes
/// (Sec. 4.2), and the lower-part-approximate family from the surveyed
/// literature — characterized for area, power and quality at 16 bits.
/// This is the lpACLib-style catalogue the paper open-sources.
#include <functional>
#include <iostream>
#include <memory>

#include "axc/arith/lpa_adders.hpp"
#include "axc/arith/soa_adders.hpp"
#include "axc/error/evaluate.hpp"
#include "axc/logic/adder_netlists.hpp"
#include "axc/logic/power.hpp"
#include "bench_util.hpp"

int main() {
  using namespace axc;
  using arith::FullAdderKind;
  bench::banner("Library survey", "16-bit approximate adder catalogue");

  struct Entry {
    std::unique_ptr<arith::Adder> adder;
    std::function<logic::Netlist()> netlist;
  };
  std::vector<Entry> entries;
  const unsigned n = 16;

  // Exact baseline.
  {
    const std::vector<FullAdderKind> cells(n, FullAdderKind::Accurate);
    entries.push_back({std::make_unique<arith::ExactAdder>(n),
                       [cells] { return logic::ripple_adder_netlist(cells); }});
  }
  // IMPACT cells on 4 and 8 LSBs.
  for (const FullAdderKind kind :
       {FullAdderKind::Apx1, FullAdderKind::Apx2, FullAdderKind::Apx3,
        FullAdderKind::Apx4, FullAdderKind::Apx5}) {
    for (const unsigned k : {4u, 8u}) {
      auto ripple = std::make_unique<arith::RippleAdder>(
          arith::RippleAdder::lsb_approximated(n, kind, k));
      const auto cells = ripple->cells();
      entries.push_back(
          {std::move(ripple),
           [cells] { return logic::ripple_adder_netlist(cells); }});
    }
  }
  // GeAr family, including the SoA equivalences.
  for (const arith::GeArConfig config :
       {arith::GeArConfig{16, 4, 4}, arith::GeArConfig{16, 2, 2},
        arith::GeArConfig{16, 2, 6}, arith::aca_i_config(16, 6),
        arith::gda_config(16, 2, 3)}) {
    entries.push_back({std::make_unique<arith::GeArAdder>(config),
                       [config] { return logic::gear_adder_netlist(config); }});
  }
  // Lower-part-approximate family.
  for (const unsigned k : {4u, 8u}) {
    entries.push_back({std::make_unique<arith::LoaAdder>(n, k),
                       [=] { return logic::loa_adder_netlist(n, k); }});
    entries.push_back({std::make_unique<arith::EtaiAdder>(n, k),
                       [=] { return logic::etai_adder_netlist(n, k); }});
  }

  Table table({"Adder", "Area [GE]", "Power [nW]", "Error rate", "MED",
               "NMED", "Max err"});
  for (const Entry& entry : entries) {
    const logic::Netlist nl = entry.netlist();
    const double power =
        logic::estimate_random_power(nl, 1024, 3).total_nw;
    error::EvalOptions opts;
    opts.samples = 1u << 18;
    const auto stats = error::evaluate_adder(*entry.adder, opts);
    table.add_row({entry.adder->name(), fmt(nl.area_ge(), 1), fmt(power, 0),
                   fmt_pct(stats.error_rate, 2),
                   fmt(stats.mean_error_distance, 2),
                   fmt(stats.normalized_med, 5),
                   std::to_string(stats.max_error)});
  }
  table.print(std::cout);
  std::cout << "\nOne catalogue, one metric vocabulary: this is the design\n"
               "space an approximation-aware compiler or HLS flow would\n"
               "search (Sec. 4.2's cross-layer motivation).\n";
  return 0;
}
