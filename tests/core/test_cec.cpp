#include "axc/core/cec.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "axc/common/rng.hpp"

namespace axc::core {
namespace {

using arith::GeArAdder;
using arith::GeArConfig;

TEST(Cec, OffsetIsNegatedMedianError) {
  error::ErrorDistribution dist;
  for (int i = 0; i < 70; ++i) dist.record(-16);
  for (int i = 0; i < 30; ++i) dist.record(0);
  const Cec cec = Cec::from_distribution(dist);
  EXPECT_EQ(cec.correction(), 16);
  EXPECT_DOUBLE_EQ(cec.uncorrected_med(), 0.7 * 16.0);
  EXPECT_DOUBLE_EQ(cec.corrected_med(), 0.3 * 16.0);
}

TEST(Cec, ApplyClampsAtZero) {
  error::ErrorDistribution dist;
  dist.record(8);  // over-estimating datapath: correction is negative
  const Cec cec = Cec::from_distribution(dist);
  EXPECT_EQ(cec.correction(), -8);
  EXPECT_EQ(cec.apply(3), 0u);
  EXPECT_EQ(cec.apply(20), 12u);
}

TEST(Cec, EmptyDistributionRejected) {
  EXPECT_THROW(Cec::from_distribution(error::ErrorDistribution{}),
               std::invalid_argument);
}

TEST(Cec, NeverIncreasesExpectedAbsoluteError) {
  // Weighted-median property, exercised on real GeAr distributions.
  for (const GeArConfig config :
       {GeArConfig{8, 2, 2}, GeArConfig{8, 1, 1}, GeArConfig{10, 2, 4}}) {
    const GeArAdder adder(config);
    const auto dist = error::adder_error_distribution(adder);
    const Cec cec = Cec::from_distribution(dist);
    EXPECT_LE(cec.corrected_med(), cec.uncorrected_med()) << config.name();
  }
}

TEST(Cec, ImprovesHeavilyBiasedDatapath) {
  // A cascade that almost always errs by the same amount is the CEC
  // sweet spot: the single offset removes nearly all of the error.
  error::ErrorDistribution dist;
  for (int i = 0; i < 95; ++i) dist.record(-64);
  for (int i = 0; i < 5; ++i) dist.record(0);
  const Cec cec = Cec::from_distribution(dist);
  EXPECT_LT(cec.corrected_med(), 0.1 * cec.uncorrected_med());
}

TEST(CecArea, SavesVsPerAdderEdc) {
  // A SAD-like cascade: 8 GeAr(16,4,4) adders (k = 4), 16-bit output.
  const CecAreaReport report =
      compare_cec_vs_edc_area({16, 4, 4}, 8, 16);
  EXPECT_GT(report.edc_area_ge, report.cec_area_ge);
  EXPECT_GT(report.saving_percent, 50.0);
  EXPECT_GT(report.cec_area_ge, 0.0);
}

TEST(CecArea, EdcGrowsWithCascadeWhileCecStaysFixed) {
  const CecAreaReport report = compare_cec_vs_edc_area({8, 2, 2}, 1, 9);
  const CecAreaReport longer = compare_cec_vs_edc_area({8, 2, 2}, 6, 9);
  EXPECT_GT(report.edc_area_ge, 0.0);  // k = 3 -> two boundaries
  EXPECT_GT(longer.edc_area_ge, report.edc_area_ge);
  EXPECT_DOUBLE_EQ(longer.cec_area_ge, report.cec_area_ge);
}

TEST(CecArea, ExactConfigNeedsNoEdc) {
  // L == N: single sub-adder, no boundaries, no EDC hardware at all.
  const CecAreaReport report = compare_cec_vs_edc_area({8, 4, 4}, 4, 9);
  EXPECT_DOUBLE_EQ(report.edc_area_ge, 0.0);
}

TEST(CecArea, Validation) {
  EXPECT_THROW(compare_cec_vs_edc_area({8, 3, 3}, 1, 8),
               std::invalid_argument);
  EXPECT_THROW(compare_cec_vs_edc_area({8, 2, 2}, 0, 8),
               std::invalid_argument);
}

// End-to-end: correct a GeAr adder's outputs with the CEC offset and
// verify the mean error distance actually drops on fresh inputs.
TEST(Cec, EndToEndImprovesGearAdder) {
  const GeArConfig config{12, 2, 2};
  const GeArAdder adder(config);
  const Cec cec =
      Cec::from_distribution(error::adder_error_distribution(adder));
  axc::Rng rng(123);
  double raw_med = 0.0, corrected_med = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t a = rng.bits(12);
    const std::uint64_t b = rng.bits(12);
    const std::uint64_t exact = a + b;
    const std::uint64_t raw = adder.add(a, b, 0);
    const std::uint64_t fixed = cec.apply(raw);
    raw_med += std::llabs(static_cast<std::int64_t>(raw) -
                          static_cast<std::int64_t>(exact));
    corrected_med += std::llabs(static_cast<std::int64_t>(fixed) -
                                static_cast<std::int64_t>(exact));
  }
  EXPECT_LE(corrected_med, raw_med);
}

}  // namespace
}  // namespace axc::core
