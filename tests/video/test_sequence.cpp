#include "axc/video/sequence.hpp"

#include <gtest/gtest.h>

namespace axc::video {
namespace {

TEST(Sequence, DeterministicForSeed) {
  SequenceConfig config;
  config.frames = 3;
  const Sequence a = generate_sequence(config);
  const Sequence b = generate_sequence(config);
  ASSERT_EQ(a.size(), 3u);
  for (std::size_t f = 0; f < a.size(); ++f) EXPECT_EQ(a[f], b[f]);
}

TEST(Sequence, FrameGeometryAndCount) {
  SequenceConfig config;
  config.width = 48;
  config.height = 32;
  config.frames = 5;
  const Sequence seq = generate_sequence(config);
  ASSERT_EQ(seq.size(), 5u);
  for (const auto& frame : seq) {
    EXPECT_EQ(frame.width(), 48);
    EXPECT_EQ(frame.height(), 32);
  }
}

TEST(Sequence, TemporalCoherence) {
  // Consecutive frames must be similar (small motion), and far frames less
  // so — the property motion estimation depends on.
  SequenceConfig config;
  config.frames = 6;
  config.noise_sigma = 0.5;
  const Sequence seq = generate_sequence(config);
  const double near = image::image_mse(seq[0], seq[1]);
  const double far = image::image_mse(seq[0], seq[5]);
  EXPECT_LT(near, far);
}

TEST(Sequence, FramesActuallyChange) {
  SequenceConfig config;
  config.frames = 3;
  const Sequence seq = generate_sequence(config);
  EXPECT_NE(seq[0], seq[1]);
  EXPECT_NE(seq[1], seq[2]);
}

TEST(Sequence, NoiseFreePanIsPureTranslationInTheInterior) {
  SequenceConfig config;
  config.frames = 2;
  config.objects = 0;
  config.noise_sigma = 0.0;
  config.pan_x = 2.0;
  config.pan_y = 0.0;
  const Sequence seq = generate_sequence(config);
  // frame1(x, y) == frame0(x + 2, y) away from borders.
  int mismatches = 0;
  for (int y = 4; y < config.height - 4; ++y) {
    for (int x = 4; x < config.width - 6; ++x) {
      mismatches += seq[1].at(x, y) != seq[0].at(x + 2, y);
    }
  }
  EXPECT_EQ(mismatches, 0);
}

TEST(Sequence, Validation) {
  SequenceConfig config;
  config.width = 8;
  EXPECT_THROW(generate_sequence(config), std::invalid_argument);
  config = {};
  config.frames = 0;
  EXPECT_THROW(generate_sequence(config), std::invalid_argument);
}

}  // namespace
}  // namespace axc::video
