#include "axc/service/protocol.hpp"

#include <bit>
#include <cstring>

#include "axc/common/require.hpp"
#include "axc/logic/characterize.hpp"

namespace axc::service {

namespace {

// --- Little-endian primitives ---------------------------------------------

void put_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(Bytes& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(Bytes& out, std::string_view text) {
  put_u32(out, static_cast<std::uint32_t>(text.size()));
  out.insert(out.end(), text.begin(), text.end());
}

/// Sequential reader over a payload; every getter throws DecodeError on
/// underrun so truncated frames surface as BadRequest, never as UB.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() {
    const auto b = take(2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  }
  std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | b[static_cast<std::size_t>(i)];
    return v;
  }
  std::uint64_t u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[static_cast<std::size_t>(i)];
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string string() {
    const std::uint32_t n = u32();
    const auto b = take(n);
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }
  bool done() const { return pos_ == data_.size(); }
  void expect_done() const {
    if (!done()) throw DecodeError("trailing bytes after payload");
  }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (data_.size() - pos_ < n) throw DecodeError("truncated payload");
    const auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

template <typename Enum>
Enum checked_enum(std::uint8_t raw, std::uint8_t max, const char* what) {
  if (raw > max) {
    throw DecodeError(std::string("invalid ") + what + " value " +
                      std::to_string(raw));
  }
  return static_cast<Enum>(raw);
}

Bytes request_prefix(Endpoint endpoint, std::uint32_t deadline_ms) {
  Bytes out;
  put_u8(out, kProtocolVersion);
  put_u8(out, static_cast<std::uint8_t>(endpoint));
  put_u32(out, deadline_ms);
  return out;
}

Bytes response_prefix(Status status) {
  Bytes out;
  put_u8(out, kProtocolVersion);
  put_u8(out, static_cast<std::uint8_t>(status));
  put_u8(out, 0);  // served_level; stamped later via set_response_level
  return out;
}

/// Splits a response into its status and body, throwing ServiceError for
/// transported non-Ok statuses.
std::span<const std::uint8_t> ok_body(std::span<const std::uint8_t> response) {
  if (response.size() < kResponseHeaderBytes) {
    throw DecodeError("truncated response");
  }
  if (response[0] != kProtocolVersion) {
    throw DecodeError("unknown response version " +
                      std::to_string(response[0]));
  }
  const auto status = static_cast<Status>(response[1]);
  if (status == Status::Ok) return response.subspan(kResponseHeaderBytes);
  Reader reader(response.subspan(kResponseHeaderBytes));
  std::string message;
  try {
    message = reader.string();
  } catch (const DecodeError&) {
    message = "(no message)";
  }
  throw ServiceError(status, message);
}

}  // namespace

std::string_view endpoint_name(Endpoint endpoint) {
  switch (endpoint) {
    case Endpoint::CharacterizeAdder: return "characterize_adder";
    case Endpoint::CharacterizeMultiplier: return "characterize_multiplier";
    case Endpoint::EvaluateError: return "evaluate_error";
    case Endpoint::GearDesignSpace: return "gear_design_space";
    case Endpoint::EncodeProbe: return "encode_probe";
    case Endpoint::Ping: return "ping";
    case Endpoint::Shutdown: return "shutdown";
    case Endpoint::CacheInsert: return "cache_insert";
    case Endpoint::HeteroAdderDesignSpace: return "hetero_adder_design_space";
    case Endpoint::ArrayMulDesignSpace: return "array_mul_design_space";
    case Endpoint::StaticAdderDesignSpace: return "static_adder_design_space";
  }
  return "unknown";
}

std::string_view status_name(Status status) {
  switch (status) {
    case Status::Ok: return "ok";
    case Status::BadRequest: return "bad_request";
    case Status::Overloaded: return "overloaded";
    case Status::DeadlineExceeded: return "deadline_exceeded";
    case Status::ShuttingDown: return "shutting_down";
    case Status::InternalError: return "internal_error";
  }
  return "unknown";
}

ServiceError::ServiceError(Status status, const std::string& message)
    : std::runtime_error(std::string(status_name(status)) + ": " + message),
      status_(status) {}

// --- Header ---------------------------------------------------------------

std::optional<RequestHeader> parse_request_header(
    std::span<const std::uint8_t> request) {
  if (request.size() < kRequestHeaderBytes) return std::nullopt;
  if (request[0] != kProtocolVersion) return std::nullopt;
  const std::uint8_t raw = request[1];
  if (raw < static_cast<std::uint8_t>(Endpoint::CharacterizeAdder) ||
      raw > static_cast<std::uint8_t>(Endpoint::StaticAdderDesignSpace)) {
    return std::nullopt;
  }
  RequestHeader header;
  header.version = request[0];
  header.endpoint = static_cast<Endpoint>(raw);
  header.deadline_ms = static_cast<std::uint32_t>(
      request[2] | (request[3] << 8) | (request[4] << 16) |
      (static_cast<std::uint32_t>(request[5]) << 24));
  return header;
}

// --- Request encoders -----------------------------------------------------

Bytes encode_request(const CharacterizeAdderRequest& request,
                     std::uint32_t deadline_ms) {
  Bytes out = request_prefix(Endpoint::CharacterizeAdder, deadline_ms);
  put_u8(out, static_cast<std::uint8_t>(request.family));
  put_u32(out, request.width);
  put_u32(out, request.param_a);
  put_u32(out, request.param_b);
  put_u8(out, static_cast<std::uint8_t>(request.cell));
  put_u64(out, request.vectors);
  put_u64(out, request.seed);
  return out;
}

Bytes encode_request(const CharacterizeMultiplierRequest& request,
                     std::uint32_t deadline_ms) {
  Bytes out = request_prefix(Endpoint::CharacterizeMultiplier, deadline_ms);
  put_u8(out, static_cast<std::uint8_t>(request.structure));
  put_u32(out, request.width);
  put_u8(out, static_cast<std::uint8_t>(request.block));
  put_u8(out, static_cast<std::uint8_t>(request.cell));
  put_u32(out, request.approx_lsbs);
  put_u64(out, request.vectors);
  put_u64(out, request.seed);
  return out;
}

Bytes encode_request(const EvaluateErrorRequest& request,
                     std::uint32_t deadline_ms) {
  Bytes out = request_prefix(Endpoint::EvaluateError, deadline_ms);
  put_u8(out, static_cast<std::uint8_t>(request.target));
  put_u32(out, request.gear.n);
  put_u32(out, request.gear.r);
  put_u32(out, request.gear.p);
  put_u32(out, request.correction_iterations);
  put_u32(out, request.mul_width);
  put_u8(out, static_cast<std::uint8_t>(request.mul_block));
  put_u8(out, static_cast<std::uint8_t>(request.mul_cell));
  put_u32(out, request.mul_approx_lsbs);
  put_u32(out, request.max_exhaustive_bits);
  put_u64(out, request.samples);
  put_u64(out, request.seed);
  return out;
}

Bytes encode_request(const GearDesignSpaceRequest& request,
                     std::uint32_t deadline_ms) {
  Bytes out = request_prefix(Endpoint::GearDesignSpace, deadline_ms);
  put_u32(out, request.width);
  put_u32(out, request.min_p);
  put_u8(out, request.include_exact ? 1 : 0);
  put_u8(out, request.estimate_power ? 1 : 0);
  put_f64(out, request.min_accuracy);
  return out;
}

Bytes encode_request(const HeteroAdderDesignSpaceRequest& request,
                     std::uint32_t deadline_ms) {
  Bytes out = request_prefix(Endpoint::HeteroAdderDesignSpace, deadline_ms);
  put_u32(out, request.width);
  put_u32(out, request.block_width);
  put_u8(out, request.include_truncated ? 1 : 0);
  put_u8(out, request.estimate_power ? 1 : 0);
  put_f64(out, request.min_accuracy);
  return out;
}

Bytes encode_request(const ArrayMulDesignSpaceRequest& request,
                     std::uint32_t deadline_ms) {
  Bytes out = request_prefix(Endpoint::ArrayMulDesignSpace, deadline_ms);
  put_u32(out, request.width);
  put_u32(out, request.max_approx_columns);
  put_u8(out, request.estimate_power ? 1 : 0);
  put_f64(out, request.min_accuracy);
  return out;
}

Bytes encode_request(const StaticAdderDesignSpaceRequest& request,
                     std::uint32_t deadline_ms) {
  Bytes out = request_prefix(Endpoint::StaticAdderDesignSpace, deadline_ms);
  put_u32(out, request.width);
  put_u32(out, request.max_approx_lsbs);
  put_u8(out, request.estimate_power ? 1 : 0);
  put_f64(out, request.min_accuracy);
  return out;
}

Bytes encode_request(const EncodeProbeRequest& request,
                     std::uint32_t deadline_ms) {
  Bytes out = request_prefix(Endpoint::EncodeProbe, deadline_ms);
  put_u16(out, request.width);
  put_u16(out, request.height);
  put_u16(out, request.frames);
  put_u16(out, request.objects);
  put_u64(out, request.sequence_seed);
  put_u8(out, request.sad_variant);
  put_u8(out, request.approx_lsbs);
  put_u8(out, request.block_size);
  put_u8(out, request.search_range);
  put_u16(out, request.quant_step);
  return out;
}

Bytes encode_request(Endpoint endpoint, std::uint32_t deadline_ms) {
  require(endpoint == Endpoint::Ping || endpoint == Endpoint::Shutdown,
          "encode_request: endpoint requires a typed body");
  return request_prefix(endpoint, deadline_ms);
}

Bytes encode_request(const CacheInsertRequest& request,
                     std::uint32_t deadline_ms) {
  Bytes out = request_prefix(Endpoint::CacheInsert, deadline_ms);
  put_u32(out, static_cast<std::uint32_t>(request.canonical.size()));
  out.insert(out.end(), request.canonical.begin(), request.canonical.end());
  out.insert(out.end(), request.response.begin(), request.response.end());
  return out;
}

// --- Request decoders -----------------------------------------------------

CharacterizeAdderRequest decode_characterize_adder(
    std::span<const std::uint8_t> body) {
  Reader reader(body);
  CharacterizeAdderRequest request;
  request.family = checked_enum<AdderFamily>(reader.u8(), 3, "adder family");
  request.width = reader.u32();
  request.param_a = reader.u32();
  request.param_b = reader.u32();
  request.cell = checked_enum<arith::FullAdderKind>(
      reader.u8(), arith::kFullAdderKindCount - 1, "full-adder kind");
  request.vectors = reader.u64();
  request.seed = reader.u64();
  reader.expect_done();
  return request;
}

CharacterizeMultiplierRequest decode_characterize_multiplier(
    std::span<const std::uint8_t> body) {
  Reader reader(body);
  CharacterizeMultiplierRequest request;
  request.structure = checked_enum<MultiplierStructure>(
      reader.u8(), 1, "multiplier structure");
  request.width = reader.u32();
  request.block = checked_enum<arith::Mul2x2Kind>(
      reader.u8(), arith::kMul2x2KindCount - 1, "mul2x2 kind");
  request.cell = checked_enum<arith::FullAdderKind>(
      reader.u8(), arith::kFullAdderKindCount - 1, "full-adder kind");
  request.approx_lsbs = reader.u32();
  request.vectors = reader.u64();
  request.seed = reader.u64();
  reader.expect_done();
  return request;
}

EvaluateErrorRequest decode_evaluate_error(
    std::span<const std::uint8_t> body) {
  Reader reader(body);
  EvaluateErrorRequest request;
  request.target = checked_enum<EvalTarget>(reader.u8(), 1, "eval target");
  request.gear.n = reader.u32();
  request.gear.r = reader.u32();
  request.gear.p = reader.u32();
  request.correction_iterations = reader.u32();
  request.mul_width = reader.u32();
  request.mul_block = checked_enum<arith::Mul2x2Kind>(
      reader.u8(), arith::kMul2x2KindCount - 1, "mul2x2 kind");
  request.mul_cell = checked_enum<arith::FullAdderKind>(
      reader.u8(), arith::kFullAdderKindCount - 1, "full-adder kind");
  request.mul_approx_lsbs = reader.u32();
  request.max_exhaustive_bits = reader.u32();
  request.samples = reader.u64();
  request.seed = reader.u64();
  reader.expect_done();
  return request;
}

GearDesignSpaceRequest decode_gear_design_space(
    std::span<const std::uint8_t> body) {
  Reader reader(body);
  GearDesignSpaceRequest request;
  request.width = reader.u32();
  request.min_p = reader.u32();
  request.include_exact = reader.u8() != 0;
  request.estimate_power = reader.u8() != 0;
  request.min_accuracy = reader.f64();
  reader.expect_done();
  return request;
}

HeteroAdderDesignSpaceRequest decode_hetero_adder_design_space(
    std::span<const std::uint8_t> body) {
  Reader reader(body);
  HeteroAdderDesignSpaceRequest request;
  request.width = reader.u32();
  request.block_width = reader.u32();
  request.include_truncated = reader.u8() != 0;
  request.estimate_power = reader.u8() != 0;
  request.min_accuracy = reader.f64();
  reader.expect_done();
  return request;
}

ArrayMulDesignSpaceRequest decode_array_mul_design_space(
    std::span<const std::uint8_t> body) {
  Reader reader(body);
  ArrayMulDesignSpaceRequest request;
  request.width = reader.u32();
  request.max_approx_columns = reader.u32();
  request.estimate_power = reader.u8() != 0;
  request.min_accuracy = reader.f64();
  reader.expect_done();
  return request;
}

StaticAdderDesignSpaceRequest decode_static_adder_design_space(
    std::span<const std::uint8_t> body) {
  Reader reader(body);
  StaticAdderDesignSpaceRequest request;
  request.width = reader.u32();
  request.max_approx_lsbs = reader.u32();
  request.estimate_power = reader.u8() != 0;
  request.min_accuracy = reader.f64();
  reader.expect_done();
  return request;
}

EncodeProbeRequest decode_encode_probe(std::span<const std::uint8_t> body) {
  Reader reader(body);
  EncodeProbeRequest request;
  request.width = reader.u16();
  request.height = reader.u16();
  request.frames = reader.u16();
  request.objects = reader.u16();
  request.sequence_seed = reader.u64();
  request.sad_variant = reader.u8();
  request.approx_lsbs = reader.u8();
  request.block_size = reader.u8();
  request.search_range = reader.u8();
  request.quant_step = reader.u16();
  reader.expect_done();
  return request;
}

CacheInsertRequest decode_cache_insert(std::span<const std::uint8_t> body) {
  if (body.size() < 4) throw DecodeError("truncated cache_insert payload");
  const std::uint32_t canonical_len =
      static_cast<std::uint32_t>(body[0]) | (body[1] << 8) |
      (body[2] << 16) | (static_cast<std::uint32_t>(body[3]) << 24);
  if (canonical_len > kMaxFrameBytes ||
      body.size() - 4 < canonical_len) {
    throw DecodeError("cache_insert canonical length exceeds payload");
  }
  CacheInsertRequest request;
  request.canonical.assign(body.begin() + 4,
                           body.begin() + 4 + canonical_len);
  request.response.assign(body.begin() + 4 + canonical_len, body.end());
  return request;
}

// --- Response encoders ----------------------------------------------------

Bytes encode_response(const CharacterizeResponse& response) {
  Bytes out = response_prefix(Status::Ok);
  put_f64(out, response.area_ge);
  put_f64(out, response.power_nw);
  put_u64(out, response.gate_count);
  return out;
}

Bytes encode_response(const EvaluateErrorResponse& response) {
  Bytes out = response_prefix(Status::Ok);
  put_u64(out, response.samples);
  put_u64(out, response.error_count);
  put_u64(out, response.max_error);
  put_f64(out, response.error_rate);
  put_f64(out, response.mean_error_distance);
  put_f64(out, response.normalized_med);
  put_f64(out, response.mean_relative_error);
  put_f64(out, response.mean_squared_error);
  put_f64(out, response.root_mean_squared_error);
  put_u8(out, response.exhaustive ? 1 : 0);
  return out;
}

Bytes encode_response(const GearDesignSpaceResponse& response) {
  Bytes out = response_prefix(Status::Ok);
  put_u32(out, static_cast<std::uint32_t>(response.points.size()));
  for (const GearDesignSpacePoint& point : response.points) {
    put_u32(out, point.r);
    put_u32(out, point.p);
    put_f64(out, point.area_ge);
    put_f64(out, point.power_nw);
    put_f64(out, point.accuracy_percent);
    put_u8(out, point.on_pareto_front ? 1 : 0);
  }
  put_u32(out, response.max_accuracy_index);
  put_u32(out, response.min_area_index);
  return out;
}

Bytes encode_response(const HeteroAdderDesignSpaceResponse& response) {
  Bytes out = response_prefix(Status::Ok);
  put_u32(out, static_cast<std::uint32_t>(response.points.size()));
  for (const HeteroAdderDesignSpacePoint& point : response.points) {
    put_u8(out, static_cast<std::uint8_t>(point.low_kind));
    put_u32(out, point.approx_blocks);
    put_f64(out, point.area_ge);
    put_f64(out, point.power_nw);
    put_f64(out, point.accuracy_percent);
    put_f64(out, point.error_rate);
    put_f64(out, point.med);
    put_f64(out, point.nmed);
    put_u64(out, point.wce);
    put_u8(out, point.on_pareto_front ? 1 : 0);
  }
  put_u32(out, response.max_accuracy_index);
  put_u32(out, response.min_area_index);
  return out;
}

Bytes encode_response(const ArrayMulDesignSpaceResponse& response) {
  Bytes out = response_prefix(Status::Ok);
  put_u32(out, static_cast<std::uint32_t>(response.points.size()));
  for (const ArrayMulDesignSpacePoint& point : response.points) {
    put_u8(out, static_cast<std::uint8_t>(point.compressor));
    put_u32(out, point.approx_columns);
    put_f64(out, point.area_ge);
    put_f64(out, point.power_nw);
    put_f64(out, point.accuracy_percent);
    put_f64(out, point.error_rate_est);
    put_f64(out, point.med_est);
    put_f64(out, point.nmed_est);
    put_u8(out, point.model_exact ? 1 : 0);
    put_u8(out, point.on_pareto_front ? 1 : 0);
  }
  put_u32(out, response.max_accuracy_index);
  put_u32(out, response.min_area_index);
  return out;
}

Bytes encode_response(const StaticAdderDesignSpaceResponse& response) {
  Bytes out = response_prefix(Status::Ok);
  put_u32(out, static_cast<std::uint32_t>(response.points.size()));
  for (const StaticAdderDesignSpacePoint& point : response.points) {
    put_u8(out, static_cast<std::uint8_t>(point.kind));
    put_u32(out, point.approx_lsbs);
    put_f64(out, point.area_ge);
    put_f64(out, point.power_nw);
    put_f64(out, point.accuracy_percent);
    put_f64(out, point.error_rate);
    put_f64(out, point.med);
    put_f64(out, point.nmed);
    put_u64(out, point.wce);
    put_u8(out, point.on_pareto_front ? 1 : 0);
  }
  put_u32(out, response.max_accuracy_index);
  put_u32(out, response.min_area_index);
  return out;
}

Bytes encode_response(const EncodeProbeResponse& response) {
  Bytes out = response_prefix(Status::Ok);
  put_u64(out, response.total_bits);
  put_f64(out, response.bits_per_frame);
  put_f64(out, response.psnr_db);
  put_u64(out, response.sad_calls);
  return out;
}

Bytes encode_ok_response() { return response_prefix(Status::Ok); }

Bytes encode_error_response(Status status, std::string_view message) {
  require(status != Status::Ok,
          "encode_error_response: Ok is not an error status");
  Bytes out = response_prefix(status);
  put_string(out, message);
  return out;
}

std::optional<Status> response_status(
    std::span<const std::uint8_t> response) {
  if (response.size() < kResponseHeaderBytes ||
      response[0] != kProtocolVersion) {
    return std::nullopt;
  }
  if (response[1] > static_cast<std::uint8_t>(Status::InternalError)) {
    return std::nullopt;
  }
  return static_cast<Status>(response[1]);
}

std::optional<std::uint8_t> response_level(
    std::span<const std::uint8_t> response) {
  if (!response_status(response)) return std::nullopt;
  return response[2];
}

void set_response_level(Bytes& response, std::uint8_t level) {
  require(response.size() >= kResponseHeaderBytes,
          "set_response_level: response shorter than a header");
  response[2] = level;
}

// --- Response decoders ----------------------------------------------------

CharacterizeResponse decode_characterize_response(
    std::span<const std::uint8_t> response) {
  Reader reader(ok_body(response));
  CharacterizeResponse out;
  out.area_ge = reader.f64();
  out.power_nw = reader.f64();
  out.gate_count = reader.u64();
  reader.expect_done();
  return out;
}

EvaluateErrorResponse decode_evaluate_error_response(
    std::span<const std::uint8_t> response) {
  Reader reader(ok_body(response));
  EvaluateErrorResponse out;
  out.samples = reader.u64();
  out.error_count = reader.u64();
  out.max_error = reader.u64();
  out.error_rate = reader.f64();
  out.mean_error_distance = reader.f64();
  out.normalized_med = reader.f64();
  out.mean_relative_error = reader.f64();
  out.mean_squared_error = reader.f64();
  out.root_mean_squared_error = reader.f64();
  out.exhaustive = reader.u8() != 0;
  reader.expect_done();
  return out;
}

GearDesignSpaceResponse decode_gear_design_space_response(
    std::span<const std::uint8_t> response) {
  Reader reader(ok_body(response));
  GearDesignSpaceResponse out;
  const std::uint32_t count = reader.u32();
  out.points.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    GearDesignSpacePoint point;
    point.r = reader.u32();
    point.p = reader.u32();
    point.area_ge = reader.f64();
    point.power_nw = reader.f64();
    point.accuracy_percent = reader.f64();
    point.on_pareto_front = reader.u8() != 0;
    out.points.push_back(point);
  }
  out.max_accuracy_index = reader.u32();
  out.min_area_index = reader.u32();
  reader.expect_done();
  return out;
}

HeteroAdderDesignSpaceResponse decode_hetero_adder_design_space_response(
    std::span<const std::uint8_t> response) {
  Reader reader(ok_body(response));
  HeteroAdderDesignSpaceResponse out;
  const std::uint32_t count = reader.u32();
  out.points.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    HeteroAdderDesignSpacePoint point;
    point.low_kind = checked_enum<designspace::HeteroSubAdder>(
        reader.u8(),
        static_cast<std::uint8_t>(designspace::HeteroSubAdder::Truncated),
        "hetero sub-adder kind");
    point.approx_blocks = reader.u32();
    point.area_ge = reader.f64();
    point.power_nw = reader.f64();
    point.accuracy_percent = reader.f64();
    point.error_rate = reader.f64();
    point.med = reader.f64();
    point.nmed = reader.f64();
    point.wce = reader.u64();
    point.on_pareto_front = reader.u8() != 0;
    out.points.push_back(point);
  }
  out.max_accuracy_index = reader.u32();
  out.min_area_index = reader.u32();
  reader.expect_done();
  return out;
}

ArrayMulDesignSpaceResponse decode_array_mul_design_space_response(
    std::span<const std::uint8_t> response) {
  Reader reader(ok_body(response));
  ArrayMulDesignSpaceResponse out;
  const std::uint32_t count = reader.u32();
  out.points.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ArrayMulDesignSpacePoint point;
    point.compressor = checked_enum<designspace::CompressorKind>(
        reader.u8(),
        static_cast<std::uint8_t>(designspace::CompressorKind::OrPair),
        "compressor kind");
    point.approx_columns = reader.u32();
    point.area_ge = reader.f64();
    point.power_nw = reader.f64();
    point.accuracy_percent = reader.f64();
    point.error_rate_est = reader.f64();
    point.med_est = reader.f64();
    point.nmed_est = reader.f64();
    point.model_exact = reader.u8() != 0;
    point.on_pareto_front = reader.u8() != 0;
    out.points.push_back(point);
  }
  out.max_accuracy_index = reader.u32();
  out.min_area_index = reader.u32();
  reader.expect_done();
  return out;
}

StaticAdderDesignSpaceResponse decode_static_adder_design_space_response(
    std::span<const std::uint8_t> response) {
  Reader reader(ok_body(response));
  StaticAdderDesignSpaceResponse out;
  const std::uint32_t count = reader.u32();
  out.points.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    StaticAdderDesignSpacePoint point;
    point.kind = checked_enum<designspace::StaticAdderKind>(
        reader.u8(),
        static_cast<std::uint8_t>(designspace::StaticAdderKind::Heaa),
        "static adder kind");
    point.approx_lsbs = reader.u32();
    point.area_ge = reader.f64();
    point.power_nw = reader.f64();
    point.accuracy_percent = reader.f64();
    point.error_rate = reader.f64();
    point.med = reader.f64();
    point.nmed = reader.f64();
    point.wce = reader.u64();
    point.on_pareto_front = reader.u8() != 0;
    out.points.push_back(point);
  }
  out.max_accuracy_index = reader.u32();
  out.min_area_index = reader.u32();
  reader.expect_done();
  return out;
}

EncodeProbeResponse decode_encode_probe_response(
    std::span<const std::uint8_t> response) {
  Reader reader(ok_body(response));
  EncodeProbeResponse out;
  out.total_bits = reader.u64();
  out.bits_per_frame = reader.f64();
  out.psnr_db = reader.f64();
  out.sad_calls = reader.u64();
  reader.expect_done();
  return out;
}

void decode_ok_response(std::span<const std::uint8_t> response) {
  Reader reader(ok_body(response));
  reader.expect_done();
}

// --- Canonicalization -----------------------------------------------------

Bytes canonical_request_bytes(std::span<const std::uint8_t> request) {
  if (request.size() < kRequestHeaderBytes) {
    throw DecodeError("request shorter than header");
  }
  Bytes canonical;
  canonical.reserve(request.size() - 4);
  canonical.push_back(request[0]);  // version
  canonical.push_back(request[1]);  // endpoint
  canonical.insert(canonical.end(), request.begin() + kRequestHeaderBytes,
                   request.end());
  return canonical;
}

std::uint64_t canonical_request_key(
    std::span<const std::uint8_t> canonical) {
  // Seeded off the length, then folded 8 bytes at a time (zero-padded
  // tail) through the shared characterization-cache combiner.
  std::uint64_t key = logic::detail::mix_key(0x5EB51CEULL, canonical.size());
  for (std::size_t base = 0; base < canonical.size(); base += 8) {
    std::uint64_t word = 0;
    const std::size_t n = std::min<std::size_t>(8, canonical.size() - base);
    std::memcpy(&word, canonical.data() + base, n);
    key = logic::detail::mix_key(key, word);
  }
  return key;
}

// --- Framing --------------------------------------------------------------

void append_frame(Bytes& out, std::span<const std::uint8_t> payload) {
  require(payload.size() <= kMaxFrameBytes,
          "append_frame: payload exceeds kMaxFrameBytes");
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

}  // namespace axc::service
