#include "axc/core/manager.hpp"

#include <gtest/gtest.h>

namespace axc::core {
namespace {

std::vector<AcceleratorMode> sample_modes() {
  return {
      {"exact", 100.0, 100.0},
      {"mild", 60.0, 95.0},
      {"medium", 35.0, 88.0},
      {"aggressive", 15.0, 70.0},
  };
}

TEST(Manager, MinPowerPicksCheapestFeasibleModePerApp) {
  const ApproximationManager manager(sample_modes());
  const std::vector<Application> apps = {
      {"video", 85.0}, {"audio", 60.0}, {"control", 100.0}};
  const Assignment a = manager.assign_min_power(apps);
  ASSERT_TRUE(a.feasible);
  ASSERT_EQ(a.mode_of_app.size(), 3u);
  EXPECT_EQ(manager.modes()[a.mode_of_app[0]].name, "medium");
  EXPECT_EQ(manager.modes()[a.mode_of_app[1]].name, "aggressive");
  EXPECT_EQ(manager.modes()[a.mode_of_app[2]].name, "exact");
  EXPECT_DOUBLE_EQ(a.total_power_nw, 35.0 + 15.0 + 100.0);
}

TEST(Manager, MinPowerInfeasibleWhenConstraintUnmeetable) {
  const ApproximationManager manager(sample_modes());
  const Assignment a = manager.assign_min_power({{"app", 100.5}});
  EXPECT_FALSE(a.feasible);
}

TEST(Manager, MaxQualityUsesBudget) {
  const ApproximationManager manager(sample_modes());
  const std::vector<Application> apps = {{"a", 70.0}, {"b", 70.0}};
  // Budget 160: best is exact (100) + mild (60) = quality 195.
  const Assignment a = manager.assign_max_quality(apps, 160.0);
  ASSERT_TRUE(a.feasible);
  EXPECT_DOUBLE_EQ(a.total_quality, 195.0);
  EXPECT_LE(a.total_power_nw, 160.0);
}

TEST(Manager, MaxQualityTightBudgetDegrades) {
  const ApproximationManager manager(sample_modes());
  const std::vector<Application> apps = {{"a", 70.0}, {"b", 70.0}};
  // Budget 30: only aggressive+aggressive fits.
  const Assignment a = manager.assign_max_quality(apps, 30.0);
  ASSERT_TRUE(a.feasible);
  EXPECT_EQ(manager.modes()[a.mode_of_app[0]].name, "aggressive");
  EXPECT_EQ(manager.modes()[a.mode_of_app[1]].name, "aggressive");
}

TEST(Manager, MaxQualityRespectsPerAppConstraints) {
  const ApproximationManager manager(sample_modes());
  // One app demands >= 95%, so "aggressive"/"medium" are off the table for
  // it even under a tight budget.
  const std::vector<Application> apps = {{"strict", 95.0}, {"lax", 70.0}};
  const Assignment a = manager.assign_max_quality(apps, 80.0);
  ASSERT_TRUE(a.feasible);
  EXPECT_GE(manager.modes()[a.mode_of_app[0]].quality_percent, 95.0);
  EXPECT_LE(a.total_power_nw, 80.0);
}

TEST(Manager, MaxQualityInfeasibleBudget) {
  const ApproximationManager manager(sample_modes());
  const Assignment a = manager.assign_max_quality({{"a", 95.0}}, 10.0);
  EXPECT_FALSE(a.feasible);
}

TEST(Manager, MaxQualityMatchesBruteForceOnRandomInstances) {
  const std::vector<AcceleratorMode> modes = {
      {"m0", 17.0, 72.0}, {"m1", 42.0, 83.0}, {"m2", 55.0, 91.0},
      {"m3", 90.0, 100.0}};
  const ApproximationManager manager(modes);
  const std::vector<Application> apps = {
      {"a", 70.0}, {"b", 80.0}, {"c", 72.0}};
  for (const double budget : {60.0, 120.0, 150.0, 200.0, 300.0}) {
    const Assignment dp = manager.assign_max_quality(apps, budget);
    // Brute force over 4^3 assignments.
    double best = -1.0;
    bool feasible = false;
    for (int m0 = 0; m0 < 4; ++m0) {
      for (int m1 = 0; m1 < 4; ++m1) {
        for (int m2 = 0; m2 < 4; ++m2) {
          const int idx[3] = {m0, m1, m2};
          double power = 0.0, quality = 0.0;
          bool ok = true;
          for (int a = 0; a < 3; ++a) {
            if (modes[idx[a]].quality_percent < apps[a].min_quality_percent) {
              ok = false;
              break;
            }
            power += modes[idx[a]].power_nw;
            quality += modes[idx[a]].quality_percent;
          }
          if (ok && power <= budget) {
            feasible = true;
            best = std::max(best, quality);
          }
        }
      }
    }
    EXPECT_EQ(dp.feasible, feasible) << "budget " << budget;
    if (feasible) {
      EXPECT_DOUBLE_EQ(dp.total_quality, best) << "budget " << budget;
      EXPECT_LE(dp.total_power_nw, budget);
    }
  }
}

TEST(Manager, EmptyModesRejected) {
  EXPECT_THROW(ApproximationManager({}), std::invalid_argument);
}

TEST(Manager, EmptyAppsTriviallyFeasible) {
  const ApproximationManager manager(sample_modes());
  EXPECT_TRUE(manager.assign_min_power({}).feasible);
  EXPECT_TRUE(manager.assign_max_quality({}, 10.0).feasible);
}

}  // namespace
}  // namespace axc::core
