/// \file monitor.hpp
/// Runtime quality guardbands: rolling-window error statistics checked
/// against a declared contract.
///
/// A static accuracy choice is not robust — quality under approximation
/// varies strongly with input distribution (Masadeh et al.), and transient
/// faults (fault.hpp) shift it further at runtime. The QualityMonitor
/// therefore measures delivered quality continuously: arithmetic-level
/// samples feed the axc::error metrics (MED / error rate) and frame-level
/// samples feed axc::image SSIM, each over a rolling window, and both are
/// judged against a QualityContract. The AdaptiveController
/// (controller.hpp) turns the verdicts into accuracy-configuration
/// actions.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>

#include "axc/error/metrics.hpp"
#include "axc/image/image.hpp"

namespace axc::resilience {

/// The quality guardband an accelerator deployment must stay inside.
/// Unset bounds (the defaults) are never violated.
struct QualityContract {
  /// Mean-error-distance budget over the arithmetic sample window.
  double max_med = 1.0e300;
  /// Error-rate budget (fraction of arithmetic samples with any error).
  double max_error_rate = 1.0;
  /// SSIM floor over the frame sample window.
  double min_ssim = -1.0;
  /// Rolling window length, in samples, per channel.
  std::size_t window = 8;
  /// Verdicts on a channel need at least this many samples; below it the
  /// channel is treated as within contract (insufficient evidence).
  std::size_t min_samples = 2;
};

/// The monitor's judgement over the current windows.
struct QualityVerdict {
  error::ErrorStats stats;     ///< over the arithmetic window
  double mean_ssim = 1.0;      ///< over the frame window (1.0 if empty)
  std::size_t ssim_samples = 0;
  bool med_ok = true;
  bool error_rate_ok = true;
  bool ssim_ok = true;

  bool ok() const { return med_ok && error_rate_ok && ssim_ok; }
};

/// Rolling-window quality tracker for one monitored accelerator.
class QualityMonitor {
 public:
  explicit QualityMonitor(const QualityContract& contract);

  /// Records one arithmetic-level (approx, exact) output pair.
  void record(std::uint64_t approx, std::uint64_t exact);

  /// Records one frame-level SSIM sample in [-1, 1].
  void record_ssim(double value);

  /// Computes SSIM(reference, distorted), records it, and returns it.
  double record_frame(const image::Image& reference,
                      const image::Image& distorted);

  /// Judges the current windows against the contract.
  QualityVerdict verdict() const;

  /// True when some channel has enough samples and breaches its bound.
  bool in_violation() const { return !verdict().ok(); }

  /// Drops all windowed samples (used after a reconfiguration so stale
  /// samples from the previous configuration don't bias the verdict).
  void clear();

  std::size_t arithmetic_samples() const { return numeric_.size(); }
  std::size_t ssim_samples() const { return ssim_.size(); }
  const QualityContract& contract() const { return contract_; }

 private:
  QualityContract contract_;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> numeric_;
  std::deque<double> ssim_;
};

}  // namespace axc::resilience
