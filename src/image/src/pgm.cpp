#include "axc/image/pgm.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace axc::image {
namespace {

/// Reads the next header token, skipping whitespace and '#' comments.
std::string next_token(std::istream& in) {
  std::string token;
  for (;;) {
    const int c = in.peek();
    if (c == EOF) throw std::runtime_error("read_pgm: truncated header");
    if (std::isspace(c)) {
      in.get();
      continue;
    }
    if (c == '#') {
      std::string comment;
      std::getline(in, comment);
      continue;
    }
    break;
  }
  in >> token;
  return token;
}

int parse_int(const std::string& token, const char* what) {
  try {
    return std::stoi(token);
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("read_pgm: bad ") + what);
  }
}

}  // namespace

void write_pgm(const Image& image, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pgm: cannot open " + path);
  out << "P5\n" << image.width() << ' ' << image.height() << "\n255\n";
  out.write(reinterpret_cast<const char*>(image.pixels().data()),
            static_cast<std::streamsize>(image.pixels().size()));
  if (!out) throw std::runtime_error("write_pgm: write failed for " + path);
}

Image read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_pgm: cannot open " + path);
  const std::string magic = next_token(in);
  if (magic != "P5" && magic != "P2") {
    throw std::runtime_error("read_pgm: unsupported magic '" + magic + "'");
  }
  const int width = parse_int(next_token(in), "width");
  const int height = parse_int(next_token(in), "height");
  const int maxval = parse_int(next_token(in), "maxval");
  if (width < 1 || height < 1 || maxval < 1 || maxval > 255) {
    throw std::runtime_error("read_pgm: unsupported dimensions/maxval");
  }
  Image image(width, height);
  if (magic == "P5") {
    in.get();  // single whitespace after maxval
    in.read(reinterpret_cast<char*>(image.pixels().data()),
            static_cast<std::streamsize>(image.pixels().size()));
    if (in.gcount() !=
        static_cast<std::streamsize>(image.pixels().size())) {
      throw std::runtime_error("read_pgm: truncated pixel data");
    }
  } else {
    for (auto& px : image.pixels()) {
      int value = 0;
      if (!(in >> value) || value < 0 || value > maxval) {
        throw std::runtime_error("read_pgm: bad ASCII pixel");
      }
      px = static_cast<std::uint8_t>(value);
    }
  }
  return image;
}

}  // namespace axc::image
