/// Example: explore the GeAr design space for a given operand width and
/// pick a configuration under an accuracy constraint — the Fig. 4 / Table
/// IV workflow as a command-line tool. A second phase runs the same
/// workflow over the heterogeneous block-adder family (axc::designspace)
/// and closes the cross-layer loop: the cheapest sweep winner is widened
/// to accumulator width, dropped into the video encoder's SAD unit, and
/// compared against the exact path on PSNR and bitrate.
#include <iostream>

#include "axc/accel/sad.hpp"
#include "axc/common/table.hpp"
#include "axc/core/explorer.hpp"
#include "axc/core/pareto.hpp"
#include "axc/designspace/explorer.hpp"
#include "axc/video/encoder.hpp"
#include "axc/video/sequence.hpp"
#include "cli_util.hpp"

namespace {

constexpr const char* kUsage =
    "usage: design_space_explorer [width] [min_accuracy_percent]\n"
    "\n"
    "Enumerates every GeAr(N, R, P) configuration for the given operand\n"
    "width (default 11, the paper's Table IV), marks the area/accuracy\n"
    "Pareto front and answers the two selection queries. Then repeats the\n"
    "workflow for the heterogeneous block-adder family and wires the\n"
    "cheapest acceptable configuration into the video encoder's SAD\n"
    "accumulator, reporting end-to-end PSNR/bitrate against the exact\n"
    "path.\n"
    "\n"
    "arguments:\n"
    "  width                  operand width N, 2..16 (default 11)\n"
    "  min_accuracy_percent   constraint for the cheapest-config query,\n"
    "                         0..100 (default 90)\n"
    "\n"
    "options:\n"
    "  -h, --help             this text\n";

/// Encodes a small synthetic sequence with \p sad and reports quality.
axc::video::EncodeStats encode_with(const axc::accel::SadUnit& sad) {
  axc::video::SequenceConfig sc;
  sc.width = 64;
  sc.height = 64;
  sc.frames = 4;
  sc.objects = 3;
  sc.seed = 7;
  const axc::video::Sequence sequence = axc::video::generate_sequence(sc);
  axc::video::EncoderConfig ec;
  ec.motion.block_size = 8;
  ec.motion.search_range = 4;
  ec.quant_step = 8;
  return axc::video::Encoder(ec, sad).encode(sequence);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace axc;

  if (cli::wants_help(argc, argv)) {
    cli::print_usage(kUsage);
    return 0;
  }
  if (argc > 3) cli::usage_error(kUsage, "too many arguments");
  const unsigned width =
      argc >= 2 ? static_cast<unsigned>(
                      cli::require_long(kUsage, "width", argv[1], 2, 16))
                : 11;
  const double min_accuracy =
      argc >= 3 ? cli::require_double(kUsage, "min_accuracy_percent",
                                      argv[2], 0.0, 100.0)
                : 90.0;

  std::cout << "Exploring the " << width << "-bit GeAr space (P >= 1)\n\n";
  const auto space = core::explore_gear_space(width);

  std::vector<core::DesignPoint> flat;
  flat.reserve(space.size());
  for (const auto& entry : space) flat.push_back(entry.point);
  const auto front =
      core::pareto_front(flat, {core::minimize_area(), core::minimize_error()});

  Table table({"Config", "Area [GE]", "Accuracy %", "Pareto"});
  for (std::size_t i = 0; i < space.size(); ++i) {
    const bool on_front =
        std::find(front.begin(), front.end(), i) != front.end();
    table.add_row({flat[i].name, fmt(flat[i].area_ge, 1),
                   fmt(flat[i].accuracy_percent, 3), on_front ? "*" : ""});
  }
  table.print(std::cout);

  const std::size_t best_acc = core::max_accuracy_config(space);
  std::cout << "\nHighest accuracy: " << flat[best_acc].name << " ("
            << fmt(flat[best_acc].accuracy_percent, 3) << "%)\n";
  const std::size_t pick =
      core::min_area_config_with_accuracy(space, min_accuracy);
  if (pick == space.size()) {
    std::cout << "No configuration reaches " << min_accuracy
              << "% accuracy — the exact adder (L = N) is the only option.\n";
  } else {
    std::cout << "Cheapest config with >= " << min_accuracy
              << "% accuracy: " << flat[pick].name << " ("
              << fmt(flat[pick].area_ge, 1) << " GE, "
              << fmt(flat[pick].accuracy_percent, 3) << "%)\n";
  }

  // --- Phase 2: heterogeneous block adders, logic to architecture -------
  std::cout << "\nExploring the " << width
            << "-bit heterogeneous block-adder space (4-bit blocks)\n\n";
  const unsigned block_width = std::min(4u, width);
  const auto hetero =
      designspace::explore_hetero_space(width, block_width, true);

  Table htable({"Config", "Area [GE]", "Accuracy %", "MED", "Pareto"});
  std::vector<core::DesignPoint> hflat;
  hflat.reserve(hetero.size());
  for (const auto& entry : hetero) hflat.push_back(entry.point);
  const auto hfront = core::pareto_front(
      hflat, {core::minimize_area(), core::minimize_error()});
  for (std::size_t i = 0; i < hetero.size(); ++i) {
    const bool on_front =
        std::find(hfront.begin(), hfront.end(), i) != hfront.end();
    htable.add_row({hflat[i].name, fmt(hflat[i].area_ge, 1),
                    fmt(hflat[i].accuracy_percent, 3),
                    fmt(hetero[i].model.med, 4), on_front ? "*" : ""});
  }
  htable.print(std::cout);

  std::size_t hpick = hetero.size();
  for (std::size_t i = 0; i < hetero.size(); ++i) {
    if (hflat[i].accuracy_percent < min_accuracy) continue;
    if (hpick == hetero.size() ||
        hflat[i].area_ge < hflat[hpick].area_ge) {
      hpick = i;
    }
  }
  if (hpick == hetero.size()) {
    std::cout << "\nNo heterogeneous configuration reaches " << min_accuracy
              << "% accuracy; skipping the encoder wiring.\n";
    return 0;
  }
  std::cout << "\nCheapest hetero config with >= " << min_accuracy
            << "% accuracy: " << hflat[hpick].name << " ("
            << fmt(hflat[hpick].area_ge, 1) << " GE)\n";

  // Widen the winner to SAD-accumulator width (8x8 blocks accumulate up
  // to 64 * 255 < 2^16) and encode the same sequence both ways. An
  // all-accurate winner would make the comparison a no-op, so fall back
  // to the mildest carry-cut config: low magnitude error (small MED) even
  // though its error *rate* fails most accuracy floors.
  std::size_t demo = hpick;
  if (hetero[hpick].approx_blocks == 0) {
    for (std::size_t i = 0; i < hetero.size(); ++i) {
      if (hetero[i].low_kind == designspace::HeteroSubAdder::CarryCut &&
          hetero[i].approx_blocks == 1) {
        demo = i;
        std::cout << "Winner is the exact adder; wiring " << hflat[i].name
                  << " (MED " << fmt(hetero[i].model.med, 2)
                  << ") into the encoder instead.\n";
        break;
      }
    }
  }
  const auto widened =
      designspace::widen_hetero_blocks(hetero[demo].blocks, 16);
  const designspace::HeteroSadUnit hetero_sad(widened, 64);
  const accel::SadAccelerator exact_sad(accel::accu_sad(64));
  const video::EncodeStats exact = encode_with(exact_sad);
  const video::EncodeStats approx = encode_with(hetero_sad);
  std::cout << "\nEncoder quality, exact vs " << hetero_sad.name() << ":\n"
            << "  exact  : psnr_db=" << fmt(exact.psnr_db, 4)
            << " bits_per_frame=" << fmt(exact.bits_per_frame, 1) << "\n"
            << "  hetero : psnr_db=" << fmt(approx.psnr_db, 4)
            << " bits_per_frame=" << fmt(approx.bits_per_frame, 1) << "\n"
            << "  psnr_delta_db=" << fmt(exact.psnr_db - approx.psnr_db, 4)
            << "\n";
  return 0;
}
