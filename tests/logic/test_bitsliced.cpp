#include "axc/logic/bitsliced.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "axc/accel/sad_netlist.hpp"
#include "axc/common/bits.hpp"
#include "axc/common/rng.hpp"
#include "axc/logic/adder_netlists.hpp"
#include "axc/logic/mul_netlists.hpp"
#include "axc/logic/simulator.hpp"

namespace axc::logic {
namespace {

using arith::FullAdderKind;
using arith::Mul2x2Kind;

// ---------------------------------------------------------------------------
// Equivalence harnesses.
//
// Exhaustive: counting-lane enumeration must reproduce Simulator::apply_word
// on every input word (functional bit-exactness over the whole space).
//
// Randomized: a packed run of T stimulus words over 64 lanes must equal 64
// independent scalar Simulators, lane k fed the bit-k stream — outputs per
// lane per step, per-gate toggle totals, and switched energy all identical.
// ---------------------------------------------------------------------------

void expect_exhaustive_equivalence(const Netlist& nl) {
  const unsigned n_in = static_cast<unsigned>(nl.inputs().size());
  ASSERT_LE(n_in, 20u) << nl.name() << ": too wide for exhaustive sweep";
  const std::uint64_t total = std::uint64_t{1} << n_in;
  Simulator scalar(nl);
  BitslicedSimulator packed(nl);
  for (std::uint64_t base = 0; base < total;
       base += BitslicedSimulator::kLanes) {
    const unsigned lanes = static_cast<unsigned>(
        std::min<std::uint64_t>(BitslicedSimulator::kLanes, total - base));
    packed.apply_word_range(base, lanes);
    for (unsigned k = 0; k < lanes; ++k) {
      ASSERT_EQ(packed.lane_output(k), scalar.apply_word(base + k))
          << nl.name() << ": word " << (base + k);
    }
  }
}

void expect_random_stream_equivalence(const Netlist& nl, unsigned steps,
                                      std::uint64_t seed) {
  constexpr unsigned kLanes = BitslicedSimulator::kLanes;
  const std::size_t n_in = nl.inputs().size();

  // One packed stimulus word per input per step.
  Rng rng(seed);
  std::vector<std::vector<std::uint64_t>> stimulus(steps);
  for (auto& words : stimulus) {
    words.resize(n_in);
    for (auto& word : words) word = rng();
  }

  BitslicedSimulator packed(nl);
  std::vector<std::vector<std::uint64_t>> packed_out(steps);
  for (unsigned t = 0; t < steps; ++t) {
    const auto out = packed.apply_lanes(stimulus[t]);
    packed_out[t].assign(out.begin(), out.end());
  }

  // Scalar reference: 64 independent simulators, one per lane.
  std::vector<std::uint64_t> toggle_sum(nl.gate_count(), 0);
  std::vector<unsigned> bits(n_in);
  for (unsigned lane = 0; lane < kLanes; ++lane) {
    Simulator scalar(nl);
    for (unsigned t = 0; t < steps; ++t) {
      for (std::size_t i = 0; i < n_in; ++i) {
        bits[i] = bit_of(stimulus[t][i], lane);
      }
      const std::vector<unsigned> out = scalar.apply(bits);
      for (std::size_t j = 0; j < out.size(); ++j) {
        ASSERT_EQ(out[j], bit_of(packed_out[t][j], lane))
            << nl.name() << ": lane " << lane << " step " << t << " output "
            << j;
      }
    }
    for (std::size_t g = 0; g < nl.gate_count(); ++g) {
      toggle_sum[g] += scalar.gate_toggles(g);
    }
  }

  // Toggle counts must match gate for gate, and the energy computed from
  // the summed counts (same accumulation order as the packed simulator)
  // must match bit for bit.
  double expected_energy = 0.0;
  for (std::size_t g = 0; g < nl.gate_count(); ++g) {
    EXPECT_EQ(packed.gate_toggles(g), toggle_sum[g])
        << nl.name() << ": gate " << g;
    expected_energy += static_cast<double>(toggle_sum[g]) *
                       cell_info(nl.gates()[g].type).energy_fj;
  }
  EXPECT_DOUBLE_EQ(packed.switched_energy_fj(), expected_energy)
      << nl.name();
  EXPECT_EQ(packed.vectors_applied(),
            static_cast<std::uint64_t>(steps) * kLanes);
  EXPECT_EQ(packed.transition_pairs(),
            static_cast<std::uint64_t>(steps - 1) * kLanes);
}

// --- Adder netlist factories ----------------------------------------------

TEST(BitslicedEquivalence, FullAdderAllKindsExhaustive) {
  for (const FullAdderKind kind : arith::kAllFullAdderKinds) {
    const Netlist nl = full_adder_netlist(kind);
    expect_exhaustive_equivalence(nl);
    expect_random_stream_equivalence(nl, 16, 0xFA00 + static_cast<int>(kind));
  }
}

TEST(BitslicedEquivalence, RippleAdderMixedCellsExhaustive) {
  for (const FullAdderKind kind :
       {FullAdderKind::Accurate, FullAdderKind::Apx3, FullAdderKind::Apx5}) {
    const arith::RippleAdder model =
        arith::RippleAdder::lsb_approximated(8, kind, 4);
    const Netlist nl = ripple_adder_netlist(model.cells());
    expect_exhaustive_equivalence(nl);
  }
}

TEST(BitslicedEquivalence, RippleAdderWideRandomStreams) {
  // 16-bit ripple adder: 32 primary inputs, too wide to enumerate — 1024
  // randomized lane-vectors (16 packed steps x 64 lanes).
  const arith::RippleAdder model = arith::RippleAdder::lsb_approximated(
      16, FullAdderKind::Apx2, 6);
  const Netlist nl = ripple_adder_netlist(model.cells());
  expect_random_stream_equivalence(nl, 16, 0x51DE);
}

TEST(BitslicedEquivalence, LoaAdderExhaustiveAndRandom) {
  const Netlist nl = loa_adder_netlist(8, 4);
  expect_exhaustive_equivalence(nl);
  expect_random_stream_equivalence(nl, 16, 0x10A);
}

TEST(BitslicedEquivalence, EtaiAdderExhaustiveAndRandom) {
  const Netlist nl = etai_adder_netlist(8, 4);
  expect_exhaustive_equivalence(nl);
  expect_random_stream_equivalence(nl, 16, 0xE7A1);
}

TEST(BitslicedEquivalence, GearAdderExhaustiveAndRandom) {
  const Netlist nl = gear_adder_netlist({8, 2, 2});
  expect_exhaustive_equivalence(nl);
  expect_random_stream_equivalence(nl, 16, 0x6EA2);
}

// --- Multiplier netlist factories -----------------------------------------

TEST(BitslicedEquivalence, Mul2x2AllKindsExhaustive) {
  for (const Mul2x2Kind kind : {Mul2x2Kind::Accurate, Mul2x2Kind::SoA,
                                Mul2x2Kind::Ours}) {
    expect_exhaustive_equivalence(mul2x2_netlist(kind));
    expect_exhaustive_equivalence(cfg_mul2x2_netlist(kind));
  }
}

TEST(BitslicedEquivalence, RecursiveMultiplierExhaustive) {
  MulNetlistSpec spec;
  spec.width = 4;
  spec.block = Mul2x2Kind::Ours;
  spec.adder_cell = FullAdderKind::Apx3;
  spec.approx_lsbs = 2;
  const Netlist nl = multiplier_netlist(spec);
  expect_exhaustive_equivalence(nl);
  expect_random_stream_equivalence(nl, 16, 0x4321);
}

TEST(BitslicedEquivalence, WallaceMultiplierExhaustiveAndRandom) {
  expect_exhaustive_equivalence(wallace_netlist(4, FullAdderKind::Apx3, 2));
  // 8x8 Wallace: 16 inputs — exhaustive too, plus randomized lane streams.
  const Netlist wide = wallace_netlist(8, FullAdderKind::Accurate, 0);
  expect_exhaustive_equivalence(wide);
  expect_random_stream_equivalence(wide, 16, 0xA11);
}

// --- SAD netlist (wide: > 64 primary inputs) ------------------------------

TEST(BitslicedEquivalence, SadNetlistRandomStreams) {
  accel::SadConfig config;
  config.block_pixels = 4;  // 2x2 blocks: 64 primary inputs
  config.cell = FullAdderKind::Apx3;
  config.approx_lsbs = 2;
  const Netlist nl = accel::sad_netlist(config);
  expect_random_stream_equivalence(nl, 16, 0x5AD);
}

TEST(BitslicedEquivalence, SadNetlistWideRandomStreams) {
  accel::SadConfig config;
  config.block_pixels = 16;  // 4x4 blocks: 256 primary inputs
  const Netlist nl = accel::sad_netlist(config);
  expect_random_stream_equivalence(nl, 8, 0x5AD16);
}

// --- API details ----------------------------------------------------------

TEST(BitslicedSimulatorApi, CountingLanePackingMatchesDefinition) {
  std::vector<std::uint64_t> words(8);
  pack_counting_lanes(/*base=*/128, /*num_inputs=*/8, /*lanes=*/64, words);
  for (unsigned k = 0; k < 64; ++k) {
    for (unsigned i = 0; i < 8; ++i) {
      EXPECT_EQ(bit_of(words[i], k), bit_of(128 + k, i))
          << "lane " << k << " input " << i;
    }
  }
  // Unaligned bases take the generic path.
  pack_counting_lanes(/*base=*/3, /*num_inputs=*/8, /*lanes=*/5, words);
  for (unsigned k = 0; k < 5; ++k) {
    for (unsigned i = 0; i < 8; ++i) {
      EXPECT_EQ(bit_of(words[i], k), bit_of(3 + k, i));
    }
  }
}

TEST(BitslicedSimulatorApi, PartialLanesExcludedFromToggles) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.mark_output(nl.add_gate(CellType::Inv, a), "y");
  BitslicedSimulator sim(nl);
  const std::uint64_t all = ~std::uint64_t{0};
  std::vector<std::uint64_t> w0 = {0};
  std::vector<std::uint64_t> w1 = {all};
  sim.apply_lanes(w0, 2);  // baseline, 2 active lanes
  sim.apply_lanes(w1, 2);  // both lanes toggle
  EXPECT_EQ(sim.gate_toggles(0), 2u);
  EXPECT_EQ(sim.vectors_applied(), 4u);
  EXPECT_EQ(sim.transition_pairs(), 2u);
}

TEST(BitslicedSimulatorApi, ResetActivityClearsCounters) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.mark_output(nl.add_gate(CellType::Inv, a), "y");
  BitslicedSimulator sim(nl);
  sim.apply_word_range(0, 2);
  sim.apply_word_range(2, 2);
  EXPECT_GT(sim.vectors_applied(), 0u);
  sim.reset_activity();
  EXPECT_EQ(sim.vectors_applied(), 0u);
  EXPECT_EQ(sim.transition_pairs(), 0u);
  EXPECT_EQ(sim.gate_toggles(0), 0u);
}

TEST(BitslicedSimulatorApi, RejectsBadArity) {
  Netlist nl;
  nl.add_input("a");
  nl.mark_output(nl.add_input("b"), "y");
  BitslicedSimulator sim(nl);
  const std::vector<std::uint64_t> too_few = {0};
  EXPECT_THROW(sim.apply_lanes(too_few), std::invalid_argument);
  const std::vector<std::uint64_t> ok = {0, 0};
  EXPECT_THROW(sim.apply_lanes(ok, 0), std::invalid_argument);
  EXPECT_THROW(sim.apply_lanes(ok, 65), std::invalid_argument);
}

}  // namespace
}  // namespace axc::logic
