#include "axc/chaos/chaos.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "axc/obs/obs.hpp"
#include "axc/service/protocol.hpp"
#include "axc/service/server.hpp"
#include "axc/service/transport.hpp"

namespace axc::chaos {
namespace {

using service::Bytes;
using service::Endpoint;
using service::Server;
using service::ServerOptions;
using service::Status;
using service::TransportError;

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset();
  }
};

std::uint64_t counter_value(const std::string& name) {
  const auto snap = obs::snapshot();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

/// Drives `calls` ping roundtrips through a FaultyConnection, reconnecting
/// after disconnects, and returns the final stats.
ChaosStats drive(FaultyConnection& connection, int calls) {
  const Bytes wire = service::encode_request(Endpoint::Ping);
  for (int i = 0; i < calls; ++i) {
    try {
      (void)connection.roundtrip(wire);
    } catch (const TransportError&) {
      if (connection.broken()) connection.reconnect();
    }
  }
  return connection.stats();
}

TEST_F(ChaosTest, ZeroProbabilitiesArePassthrough) {
  Server server(ServerOptions{});
  service::LoopbackConnection inner(server);
  ChaosOptions options;  // all probabilities zero
  FaultyConnection chaotic(inner, options);

  const Bytes response =
      chaotic.roundtrip(service::encode_request(Endpoint::Ping));
  EXPECT_EQ(service::response_status(response), Status::Ok);
  EXPECT_EQ(chaotic.stats().roundtrips, 1u);
  EXPECT_EQ(chaotic.stats().faults(), 0u);
  server.stop();
}

TEST_F(ChaosTest, SameSeedSameFaultSchedule) {
  Server server(ServerOptions{});
  service::LoopbackConnection inner(server);

  ChaosOptions options;
  options.seed = 2026;
  options.delay = 0.05;
  options.disconnect = 0.05;
  options.drop_request = 0.05;
  options.corrupt_request = 0.05;
  options.drop_response = 0.05;
  options.corrupt_response = 0.05;
  options.sleep_ms = [](std::uint32_t) {};  // no real stalls

  FaultyConnection a(inner, options);
  FaultyConnection b(inner, options);
  const ChaosStats sa = drive(a, 256);
  const ChaosStats sb = drive(b, 256);

  EXPECT_GT(sa.faults(), 0u);  // 6 x 5% over 256 calls must fire
  EXPECT_EQ(sa.roundtrips, sb.roundtrips);
  EXPECT_EQ(sa.delays, sb.delays);
  EXPECT_EQ(sa.disconnects, sb.disconnects);
  EXPECT_EQ(sa.dropped_requests, sb.dropped_requests);
  EXPECT_EQ(sa.corrupted_requests, sb.corrupted_requests);
  EXPECT_EQ(sa.dropped_responses, sb.dropped_responses);
  EXPECT_EQ(sa.corrupted_responses, sb.corrupted_responses);

  // And a different seed reshuffles the schedule.
  ChaosOptions other = options;
  other.seed = 777;
  FaultyConnection c(inner, other);
  const ChaosStats sc = drive(c, 256);
  EXPECT_TRUE(sc.delays != sa.delays || sc.disconnects != sa.disconnects ||
              sc.dropped_requests != sa.dropped_requests ||
              sc.corrupted_requests != sa.corrupted_requests ||
              sc.dropped_responses != sa.dropped_responses ||
              sc.corrupted_responses != sa.corrupted_responses);
  server.stop();
}

TEST_F(ChaosTest, CorruptedRequestParsesAsBadRequest) {
  Server server(ServerOptions{});
  service::LoopbackConnection inner(server);
  ChaosOptions options;
  options.corrupt_request = 1.0;
  FaultyConnection chaotic(inner, options);

  const Bytes response =
      chaotic.roundtrip(service::encode_request(Endpoint::Ping));
  EXPECT_EQ(service::response_status(response), Status::BadRequest);
  EXPECT_EQ(chaotic.stats().corrupted_requests, 1u);
  server.stop();
}

TEST_F(ChaosTest, CorruptedResponseFailsHeaderValidation) {
  Server server(ServerOptions{});
  service::LoopbackConnection inner(server);
  ChaosOptions options;
  options.corrupt_response = 1.0;
  FaultyConnection chaotic(inner, options);

  const Bytes response =
      chaotic.roundtrip(service::encode_request(Endpoint::Ping));
  // The version byte was flipped: the response cannot masquerade as valid.
  EXPECT_EQ(service::response_status(response), std::nullopt);
  EXPECT_EQ(chaotic.stats().corrupted_responses, 1u);
  server.stop();
}

TEST_F(ChaosTest, DroppedRequestNeverReachesTheServer) {
  std::atomic<int> dispatched{0};
  ServerOptions options;
  options.dispatcher = [&](std::span<const std::uint8_t>, unsigned) {
    ++dispatched;
    return service::encode_ok_response();
  };
  Server server(options);
  service::LoopbackConnection inner(server);
  ChaosOptions chaos;
  chaos.drop_request = 1.0;
  FaultyConnection chaotic(inner, chaos);

  try {
    (void)chaotic.roundtrip(service::encode_request(Endpoint::Ping));
    FAIL() << "dropped request must throw";
  } catch (const TransportError& error) {
    EXPECT_EQ(error.kind(), TransportError::Kind::Injected);
  }
  EXPECT_EQ(dispatched.load(), 0);
  EXPECT_FALSE(chaotic.broken());  // the stream survives a dropped frame
  server.stop();
}

TEST_F(ChaosTest, DroppedResponseHappensAfterTheServerRan) {
  std::atomic<int> dispatched{0};
  ServerOptions options;
  options.dispatcher = [&](std::span<const std::uint8_t>, unsigned) {
    ++dispatched;
    return service::encode_ok_response();
  };
  Server server(options);
  service::LoopbackConnection inner(server);
  ChaosOptions chaos;
  chaos.drop_response = 1.0;
  FaultyConnection chaotic(inner, chaos);

  EXPECT_THROW((void)chaotic.roundtrip(service::encode_request(Endpoint::Ping)),
               TransportError);
  // The dangerous case for at-most-once assumptions: work happened, the
  // answer was lost. Retries stay safe because responses are pure
  // functions of the request bytes.
  EXPECT_EQ(dispatched.load(), 1);
  server.stop();
}

TEST_F(ChaosTest, DisconnectPoisonsTheStreamUntilReconnect) {
  Server server(ServerOptions{});
  service::LoopbackConnection inner(server);
  ChaosOptions options;
  options.disconnect = 1.0;
  FaultyConnection chaotic(inner, options);
  const Bytes wire = service::encode_request(Endpoint::Ping);

  try {
    (void)chaotic.roundtrip(wire);
    FAIL() << "disconnect must throw";
  } catch (const TransportError& error) {
    EXPECT_EQ(error.kind(), TransportError::Kind::BrokenStream);
  }
  EXPECT_TRUE(chaotic.broken());
  EXPECT_EQ(chaotic.stats().disconnects, 1u);

  // Every further call fails fast without drawing new faults, exactly
  // like writing to a dead socket.
  EXPECT_THROW((void)chaotic.roundtrip(wire), TransportError);
  EXPECT_EQ(chaotic.stats().disconnects, 1u);

  chaotic.reconnect();
  EXPECT_FALSE(chaotic.broken());
  // disconnect = 1.0, so the fresh stream dies again — but via a new draw.
  EXPECT_THROW((void)chaotic.roundtrip(wire), TransportError);
  EXPECT_EQ(chaotic.stats().disconnects, 2u);
  server.stop();
}

TEST_F(ChaosTest, DelaysUseTheInjectedSleepHook) {
  Server server(ServerOptions{});
  service::LoopbackConnection inner(server);
  std::vector<std::uint32_t> stalls;
  ChaosOptions options;
  options.delay = 1.0;
  options.delay_max_ms = 5;
  options.sleep_ms = [&](std::uint32_t ms) { stalls.push_back(ms); };
  FaultyConnection chaotic(inner, options);

  const Bytes wire = service::encode_request(Endpoint::Ping);
  for (int i = 0; i < 16; ++i) (void)chaotic.roundtrip(wire);
  ASSERT_EQ(stalls.size(), 16u);
  for (const std::uint32_t ms : stalls) {
    EXPECT_GE(ms, 1u);
    EXPECT_LE(ms, 5u);
  }
  EXPECT_EQ(chaotic.stats().delays, 16u);
  server.stop();
}

TEST_F(ChaosTest, FaultsAreObservable) {
  Server server(ServerOptions{});
  service::LoopbackConnection inner(server);
  ChaosOptions options;
  options.seed = 99;
  options.drop_request = 0.5;
  options.corrupt_response = 0.5;
  FaultyConnection chaotic(inner, options);
  const ChaosStats stats = drive(chaotic, 64);

  EXPECT_EQ(counter_value("service.transport_faults_injected"),
            stats.faults());
  EXPECT_EQ(counter_value("service.chaos.dropped_requests"),
            stats.dropped_requests);
  EXPECT_EQ(counter_value("service.chaos.corrupted_responses"),
            stats.corrupted_responses);
  EXPECT_GT(stats.faults(), 0u);
  server.stop();
}

}  // namespace
}  // namespace axc::chaos
