#include "axc/logic/truth_table.hpp"

#include <cstdlib>

#include "axc/common/bits.hpp"
#include "axc/common/require.hpp"

namespace axc::logic {

TruthTable::TruthTable(unsigned num_inputs, unsigned num_outputs,
                       std::vector<std::uint32_t> rows)
    : num_inputs_(num_inputs),
      num_outputs_(num_outputs),
      rows_(std::move(rows)) {
  require(num_inputs_ >= 1 && num_inputs_ <= 20,
          "TruthTable: inputs must be in [1, 20]");
  require(num_outputs_ >= 1 && num_outputs_ <= 32,
          "TruthTable: outputs must be in [1, 32]");
  require(rows_.size() == (std::size_t{1} << num_inputs_),
          "TruthTable: row count must be 2^inputs");
  const std::uint32_t mask =
      static_cast<std::uint32_t>(low_mask(num_outputs_));
  for (auto& row : rows_) row &= mask;
}

TruthTable TruthTable::from_function(
    unsigned num_inputs, unsigned num_outputs,
    const std::function<std::uint32_t(std::uint32_t)>& fn) {
  require(num_inputs >= 1 && num_inputs <= 20,
          "TruthTable: inputs must be in [1, 20]");
  std::vector<std::uint32_t> rows(std::size_t{1} << num_inputs);
  for (std::uint32_t w = 0; w < rows.size(); ++w) rows[w] = fn(w);
  return TruthTable(num_inputs, num_outputs, std::move(rows));
}

TruthTable TruthTable::from_rows(unsigned num_inputs, unsigned num_outputs,
                                 std::vector<std::uint32_t> rows) {
  return TruthTable(num_inputs, num_outputs, std::move(rows));
}

std::uint32_t TruthTable::error_cases_vs(const TruthTable& reference) const {
  require(num_inputs_ == reference.num_inputs_ &&
              num_outputs_ == reference.num_outputs_,
          "TruthTable::error_cases_vs: shape mismatch");
  std::uint32_t errors = 0;
  for (std::uint32_t w = 0; w < row_count(); ++w) {
    if (rows_[w] != reference.rows_[w]) ++errors;
  }
  return errors;
}

std::uint32_t TruthTable::max_error_vs(const TruthTable& reference) const {
  require(num_inputs_ == reference.num_inputs_ &&
              num_outputs_ == reference.num_outputs_,
          "TruthTable::max_error_vs: shape mismatch");
  std::uint32_t worst = 0;
  for (std::uint32_t w = 0; w < row_count(); ++w) {
    const std::int64_t diff = static_cast<std::int64_t>(rows_[w]) -
                              static_cast<std::int64_t>(reference.rows_[w]);
    worst = std::max<std::uint32_t>(
        worst, static_cast<std::uint32_t>(std::llabs(diff)));
  }
  return worst;
}

}  // namespace axc::logic
