/// \file ring.hpp
/// The static ring: a deterministic partition of the 160-bit key space
/// over N nodes, plus the client-side routing table.
///
/// Construction is pure function of N: starting from the whole space,
/// repeatedly split the widest (then lowest-stencil) range in half with
/// NodeIdRange::reduced until there are N ranges. For power-of-two N
/// every node owns an equal 1/N slice; otherwise slice widths differ by
/// at most a factor of two — and, critically, every client and every
/// node computes the *same* layout from N alone, so there is no ring
/// metadata to distribute or keep consistent.
///
/// A node's id is its range's stencil (the smallest id in the segment).
/// Routing:
///  - owner_index(key): the node whose range contains the key — also the
///    XOR-closest node id (prefix ownership and the Kademlia metric agree
///    on prefix partitions; tests/cluster/test_ring.cpp pins this);
///  - replicas(key, k): the k XOR-closest nodes, owner first. Cache
///    entries replicate to these, so a key survives any k-1 node kills.
#pragma once

#include <cstddef>
#include <vector>

#include "axc/cluster/node_id.hpp"

namespace axc::cluster {

/// Deterministic N-way prefix partition of the key space, sorted by
/// stencil (ascending key order).
std::vector<NodeIdRange> static_ring(std::size_t nodes);

class RoutingTable {
 public:
  /// Builds the table for the deterministic static ring of \p nodes.
  explicit RoutingTable(std::size_t nodes);

  std::size_t size() const { return ranges_.size(); }
  const NodeIdRange& range(std::size_t index) const {
    return ranges_[index];
  }
  const NodeId& node_id(std::size_t index) const {
    return ranges_[index].stencil;
  }

  /// The node whose segment contains \p key.
  std::size_t owner_index(const NodeId& key) const;

  /// Indices of the min(k, size()) XOR-closest nodes to \p key, closest
  /// (= owner) first. Ties cannot occur: node ids are distinct and XOR
  /// with a fixed key is a bijection.
  std::vector<std::size_t> replicas(const NodeId& key, std::size_t k) const;

 private:
  std::vector<NodeIdRange> ranges_;
};

}  // namespace axc::cluster
