/// \file synth.hpp
/// Synthetic test-image generators.
///
/// The paper's Fig. 10 applies an approximate low-pass filter to "a random
/// set of input images" (7 of them) and shows the SSIM varies with content.
/// Real photographs are not shippable here, so seven generators spanning
/// distinct content classes — smoothness, edges, texture, contrast —
/// provide the content diversity the experiment needs (the claim under
/// test is precisely that resilience is content-dependent).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "axc/image/image.hpp"

namespace axc::image {

/// The seven content classes standing in for the paper's seven images.
enum class TestImageKind : std::uint8_t {
  Gradient,      ///< smooth diagonal ramp — maximal smoothness
  Checkerboard,  ///< hard periodic edges
  Blobs,         ///< soft gaussian blobs — natural-ish low frequency
  FractalNoise,  ///< multi-octave value noise — natural-texture proxy
  Strokes,       ///< thin dark strokes on light ground — text/line art
  LowContrast,   ///< narrow mid-gray histogram
  HighFrequency, ///< per-pixel noise — worst case for low-pass fidelity
};

inline constexpr int kTestImageKindCount = 7;
inline constexpr TestImageKind kAllTestImageKinds[kTestImageKindCount] = {
    TestImageKind::Gradient,      TestImageKind::Checkerboard,
    TestImageKind::Blobs,         TestImageKind::FractalNoise,
    TestImageKind::Strokes,       TestImageKind::LowContrast,
    TestImageKind::HighFrequency,
};

/// Stable display name ("gradient", "checkerboard", ...).
std::string_view test_image_name(TestImageKind kind);

/// Deterministically generates the requested image.
Image synthesize_image(TestImageKind kind, int width, int height,
                       std::uint64_t seed = 1);

/// All seven images at the given size — the Fig. 10 input set.
std::vector<Image> make_test_image_set(int width, int height,
                                       std::uint64_t seed = 1);

}  // namespace axc::image
