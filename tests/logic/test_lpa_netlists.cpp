#include <gtest/gtest.h>

#include "axc/arith/lpa_adders.hpp"
#include "axc/logic/adder_netlists.hpp"
#include "axc/logic/simulator.hpp"

namespace axc::logic {
namespace {

// Structural LOA / ETA-I must match their behavioural models bit-for-bit.
class LpaNetlistEquivalence
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(LpaNetlistEquivalence, LoaMatchesBehaviouralModel) {
  const auto [width, k] = GetParam();
  const arith::LoaAdder model(width, k);
  const Netlist nl = loa_adder_netlist(width, k);
  ASSERT_EQ(nl.outputs().size(), width + 1u);
  Simulator sim(nl);
  const std::uint64_t limit = std::uint64_t{1} << width;
  for (std::uint64_t a = 0; a < limit; a += 3) {
    for (std::uint64_t b = 0; b < limit; b += 5) {
      ASSERT_EQ(sim.apply_word(a | (b << width)), model.add(a, b, 0))
          << model.name() << " a=" << a << " b=" << b;
    }
  }
}

TEST_P(LpaNetlistEquivalence, EtaiMatchesBehaviouralModel) {
  const auto [width, k] = GetParam();
  const arith::EtaiAdder model(width, k);
  const Netlist nl = etai_adder_netlist(width, k);
  ASSERT_EQ(nl.outputs().size(), width + 1u);
  Simulator sim(nl);
  const std::uint64_t limit = std::uint64_t{1} << width;
  for (std::uint64_t a = 0; a < limit; a += 3) {
    for (std::uint64_t b = 0; b < limit; b += 5) {
      ASSERT_EQ(sim.apply_word(a | (b << width)), model.add(a, b, 0))
          << model.name() << " a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LpaNetlistEquivalence,
    ::testing::Values(std::pair{6u, 2u}, std::pair{8u, 4u},
                      std::pair{8u, 0u}, std::pair{8u, 8u},
                      std::pair{10u, 5u}),
    [](const auto& info) {
      return "w" + std::to_string(info.param.first) + "k" +
             std::to_string(info.param.second);
    });

TEST(LpaNetlists, LoaIsSmallerThanExactRipple) {
  const std::vector<arith::FullAdderKind> cells(
      8, arith::FullAdderKind::Accurate);
  const double exact = ripple_adder_netlist(cells).area_ge();
  const double loa = loa_adder_netlist(8, 4).area_ge();
  const double etai = etai_adder_netlist(8, 4).area_ge();
  EXPECT_LT(loa, exact);
  EXPECT_LT(etai, exact);
  // LOA's OR-only low part is cheaper than ETAI's saturation chain.
  EXPECT_LT(loa, etai);
}

}  // namespace
}  // namespace axc::logic
