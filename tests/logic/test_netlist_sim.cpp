#include <gtest/gtest.h>

#include "axc/logic/netlist.hpp"
#include "axc/logic/simulator.hpp"

namespace axc::logic {
namespace {

TEST(Netlist, BuildsSimpleAndGate) {
  Netlist nl("and");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_gate(CellType::And2, a, b);
  nl.mark_output(y, "y");
  EXPECT_EQ(nl.gate_count(), 1u);
  EXPECT_EQ(nl.net_count(), 3u);
  EXPECT_DOUBLE_EQ(nl.area_ge(), cell_info(CellType::And2).area_ge);
  EXPECT_EQ(nl.driver(y), CellType::And2);
  EXPECT_EQ(nl.driver(a), CellType::Input);
}

TEST(Netlist, FaninMismatchRejected) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(CellType::And2, a), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(CellType::Inv, a, a), std::invalid_argument);
}

TEST(Netlist, UnknownNetRejected) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(CellType::Inv, a + 100), std::invalid_argument);
  EXPECT_THROW(nl.mark_output(a + 100, "y"), std::out_of_range);
}

TEST(Netlist, PseudoCellInstantiationRejected) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(CellType::Input, a), std::invalid_argument);
}

TEST(Netlist, WireThroughOutputAllowed) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.mark_output(a, "y");
  Simulator sim(nl);
  EXPECT_EQ(sim.apply_word(1), 1u);
  EXPECT_EQ(sim.apply_word(0), 0u);
  EXPECT_DOUBLE_EQ(nl.area_ge(), 0.0);
}

TEST(Simulator, EvaluatesXorTree) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  const NetId x = nl.add_gate(CellType::Xor2, a, b);
  const NetId y = nl.add_gate(CellType::Xor2, x, c);
  nl.mark_output(y, "y");
  Simulator sim(nl);
  for (unsigned w = 0; w < 8; ++w) {
    const unsigned expect = (w ^ (w >> 1) ^ (w >> 2)) & 1u;
    EXPECT_EQ(sim.apply_word(w), expect) << w;
  }
}

TEST(Simulator, ConstantsHoldValues) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId one = nl.add_const(true);
  const NetId zero = nl.add_const(false);
  nl.mark_output(nl.add_gate(CellType::And2, a, one), "and1");
  nl.mark_output(nl.add_gate(CellType::Or2, a, zero), "or0");
  Simulator sim(nl);
  EXPECT_EQ(sim.apply_word(1), 0b11u);
  EXPECT_EQ(sim.apply_word(0), 0b00u);
}

TEST(Simulator, TogglesCountedBetweenVectors) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_gate(CellType::Inv, a);
  nl.mark_output(y, "y");
  Simulator sim(nl);
  sim.apply_word(0);  // first vector: no toggle baseline
  sim.apply_word(1);  // INV output 1 -> 0: toggle
  sim.apply_word(1);  // no change
  sim.apply_word(0);  // toggle
  EXPECT_EQ(sim.gate_toggles(0), 2u);
  EXPECT_EQ(sim.vectors_applied(), 4u);
  EXPECT_DOUBLE_EQ(sim.switched_energy_fj(),
                   2.0 * cell_info(CellType::Inv).energy_fj);
}

TEST(Simulator, ResetActivityClearsCounters) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.mark_output(nl.add_gate(CellType::Inv, a), "y");
  Simulator sim(nl);
  sim.apply_word(0);
  sim.apply_word(1);
  sim.reset_activity();
  EXPECT_EQ(sim.vectors_applied(), 0u);
  EXPECT_EQ(sim.gate_toggles(0), 0u);
}

TEST(Simulator, ApplyChecksWidth) {
  Netlist nl;
  nl.add_input("a");
  Simulator sim(nl);
  const std::vector<unsigned> too_many = {1, 0};
  EXPECT_THROW(sim.apply(too_many), std::invalid_argument);
}

TEST(Simulator, MultiOutputPackingOrder) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  nl.mark_output(nl.add_gate(CellType::And2, a, b), "p0");
  nl.mark_output(nl.add_gate(CellType::Or2, a, b), "p1");
  Simulator sim(nl);
  // a=1, b=0: AND=0 (bit0), OR=1 (bit1).
  EXPECT_EQ(sim.apply_word(0b01), 0b10u);
}

}  // namespace
}  // namespace axc::logic
