/// \file cell.hpp
/// Standard-cell model for the gate-level substrate.
///
/// The paper's experimental flow (Sec. 3, Fig. 2) synthesizes VHDL/Verilog
/// with Synopsys Design Compiler and estimates power with PrimeTime. This
/// module provides the equivalent in-repo substrate: a small combinational
/// standard-cell library with per-cell area (in gate equivalents, GE, the
/// unit used by the paper's Table III) and per-toggle switching energy.
/// Area and energy values follow typical 2-input-NAND-normalized libraries.
#pragma once

#include <cstdint>
#include <string_view>

namespace axc::logic {

/// Combinational cell types available to netlists.
///
/// `Input`, `Const0` and `Const1` are pseudo-cells (no area, no power) that
/// model primary inputs and tie cells.
enum class CellType : std::uint8_t {
  Input,
  Const0,
  Const1,
  Buf,
  Inv,
  And2,
  Or2,
  Nand2,
  Nor2,
  Xor2,
  Xnor2,
  And3,
  Or3,
  Nand3,
  Nor3,
  Mux2,   // Mux2(sel, a, b) = sel ? b : a
  Maj3,   // majority of three — the carry function of a full adder
  Aoi21,  // Aoi21(a, b, c) = !((a & b) | c)
  Oai21,  // Oai21(a, b, c) = !((a | b) & c)
  Ao21,   // Ao21(a, b, c)  =  (a & b) | c
  Oa21,   // Oa21(a, b, c)  =  (a | b) & c
};

/// Number of distinct cell types (for table sizing).
inline constexpr int kCellTypeCount = static_cast<int>(CellType::Oa21) + 1;

/// Static per-cell data: name, fan-in, area, switching energy.
struct CellInfo {
  std::string_view name;
  int fanin = 0;          ///< number of input pins (0 for pseudo-cells)
  double area_ge = 0.0;   ///< area in gate equivalents (1 GE = one NAND2)
  double energy_fj = 0.0; ///< energy per output toggle, femtojoules
};

/// Returns the static description of \p type.
const CellInfo& cell_info(CellType type);

/// Evaluates the boolean function of \p type on up to three input bits.
/// Unused inputs are ignored. Pseudo-cells must not be evaluated here.
unsigned eval_cell(CellType type, unsigned a, unsigned b, unsigned c);

/// Fan-in of \p type as a constant expression (pseudo-cells report 0).
/// Mirrors cell_info(type).fanin; the tape engine's per-opcode loops need
/// it at compile time to skip loads of unused input slots.
constexpr int cell_fanin(CellType type) {
  switch (type) {
    case CellType::Buf:
    case CellType::Inv:
      return 1;
    case CellType::And2:
    case CellType::Or2:
    case CellType::Nand2:
    case CellType::Nor2:
    case CellType::Xor2:
    case CellType::Xnor2:
      return 2;
    case CellType::And3:
    case CellType::Or3:
    case CellType::Nand3:
    case CellType::Nor3:
    case CellType::Mux2:
    case CellType::Maj3:
    case CellType::Aoi21:
    case CellType::Oai21:
    case CellType::Ao21:
    case CellType::Oa21:
      return 3;
    case CellType::Input:
    case CellType::Const0:
    case CellType::Const1:
      break;
  }
  return 0;
}

/// Word-parallel (bitsliced) evaluation of \p type: bit k of every operand
/// word carries lane k's value, so one call evaluates 64 independent input
/// vectors with plain bitwise ops. Lane-for-lane identical to eval_cell.
/// Generic over the lane word: any type with ~ & | ^ works (std::uint64_t
/// for 64 lanes, logic::LaneBlock<N> for 64*N-lane SWAR blocks).
template <typename Word = std::uint64_t>
constexpr Word eval_cell_word(CellType type, Word a, Word b, Word c) {
  switch (type) {
    case CellType::Buf:
      return a;
    case CellType::Inv:
      return ~a;
    case CellType::And2:
      return a & b;
    case CellType::Or2:
      return a | b;
    case CellType::Nand2:
      return ~(a & b);
    case CellType::Nor2:
      return ~(a | b);
    case CellType::Xor2:
      return a ^ b;
    case CellType::Xnor2:
      return ~(a ^ b);
    case CellType::And3:
      return a & b & c;
    case CellType::Or3:
      return a | b | c;
    case CellType::Nand3:
      return ~(a & b & c);
    case CellType::Nor3:
      return ~(a | b | c);
    case CellType::Mux2:  // per lane: sel ? c : b
      return (a & c) | (~a & b);
    case CellType::Maj3:
      return (a & b) | (a & c) | (b & c);
    case CellType::Aoi21:
      return ~((a & b) | c);
    case CellType::Oai21:
      return ~((a | b) & c);
    case CellType::Ao21:
      return (a & b) | c;
    case CellType::Oa21:
      return (a | b) & c;
    case CellType::Input:
    case CellType::Const0:
    case CellType::Const1:
      break;
  }
  return Word{};  // pseudo-cells are never evaluated (simulators check)
}

}  // namespace axc::logic
