#include "axc/resilience/controller.hpp"

#include <algorithm>

#include "axc/accel/sad.hpp"
#include "axc/common/require.hpp"
#include "axc/obs/obs.hpp"
#include "axc/resilience/gear_sad.hpp"

namespace axc::resilience {

AccuracyLadder::AccuracyLadder(std::vector<AccuracyRung> rungs)
    : rungs_(std::move(rungs)) {
  AXC_REQUIRE(!rungs_.empty(), "AccuracyLadder: need at least one rung");
  const unsigned pixels = rungs_.front().sad->block_pixels();
  for (const AccuracyRung& rung : rungs_) {
    AXC_REQUIRE(rung.sad != nullptr, "AccuracyLadder: null rung");
    AXC_REQUIRE(rung.sad->block_pixels() == pixels,
                "AccuracyLadder: all rungs must share the block geometry");
  }
}

const AccuracyRung& AccuracyLadder::rung(std::size_t index) const {
  require_in_range(index < rungs_.size(), "AccuracyLadder: no such rung");
  return rungs_[index];
}

AccuracyLadder build_gear_sad_ladder(
    unsigned block_pixels, const std::vector<arith::GeArConfig>& configs,
    unsigned corrections_per_config) {
  AXC_REQUIRE(!configs.empty(),
              "build_gear_sad_ladder: need at least one GeAr config");
  std::vector<AccuracyRung> rungs;
  const auto latency_proxy = [](const arith::GeArConfig& c, unsigned corr) {
    return static_cast<double>(std::min((corr + 1) * c.l(), c.n)) /
           static_cast<double>(c.n);
  };
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const arith::GeArConfig& config = configs[i];
    AXC_REQUIRE(config.is_valid() && config.n == 8,
                "build_gear_sad_ladder: configs must be valid 8-bit GeAr "
                "points");
    // The first (cheapest) config climbs through CEC iterations; further
    // configs keep the top correction effort and change the architecture.
    const unsigned first = i == 0 ? 0 : corrections_per_config;
    for (unsigned corr = first; corr <= corrections_per_config; ++corr) {
      auto sad = std::make_shared<GearSad>(block_pixels, config, corr);
      if (sad->is_exact()) break;  // the explicit exact rung ends the ladder
      rungs.push_back(
          {sad->name(), std::move(sad), latency_proxy(config, corr)});
    }
  }
  auto exact =
      std::make_shared<accel::SadAccelerator>(accel::accu_sad(block_pixels));
  rungs.push_back({exact->name(), std::move(exact), 1.0});
  return AccuracyLadder(std::move(rungs));
}

AdaptiveController::AdaptiveController(AccuracyLadder ladder,
                                       const QualityContract& contract,
                                       const ControllerPolicy& policy)
    : ladder_(std::move(ladder)), policy_(policy), monitor_(contract) {
  AXC_REQUIRE(policy.violation_windows >= 1,
              "AdaptiveController: violation_windows must be >= 1");
  AXC_REQUIRE(policy.calm_windows >= 1,
              "AdaptiveController: calm_windows must be >= 1");
  AXC_REQUIRE(policy.deescalate_margin > 0.0 &&
                  policy.deescalate_margin <= 1.0,
              "AdaptiveController: deescalate_margin must be in (0, 1]");
}

const accel::SadUnit& AdaptiveController::active_sad() const {
  return *ladder_.rung(level_).sad;
}

bool AdaptiveController::comfortable(const QualityVerdict& verdict) const {
  const QualityContract& contract = monitor_.contract();
  // Headroom on every *bounded* channel that has evidence; unbounded
  // channels never block de-escalation.
  if (verdict.stats.samples >= contract.min_samples) {
    if (contract.max_med < 1.0e300 &&
        verdict.stats.mean_error_distance >
            policy_.deescalate_margin * contract.max_med) {
      return false;
    }
    if (contract.max_error_rate < 1.0 &&
        verdict.stats.error_rate >
            policy_.deescalate_margin * contract.max_error_rate) {
      return false;
    }
  }
  if (contract.min_ssim > -1.0 &&
      verdict.ssim_samples >= contract.min_samples &&
      verdict.mean_ssim < contract.min_ssim + policy_.ssim_headroom) {
    return false;
  }
  return true;
}

ControlAction AdaptiveController::step() {
  const QualityVerdict verdict = monitor_.verdict();
  const QualityContract& contract = monitor_.contract();
  const bool has_evidence =
      verdict.stats.samples >= contract.min_samples ||
      verdict.ssim_samples >= contract.min_samples;
  if (!has_evidence) return ControlAction::Hold;

  if (!verdict.ok()) {
    calm_streak_ = 0;
    ++violating_streak_;
    if (violating_streak_ >= policy_.violation_windows &&
        level_ + 1 < ladder_.size()) {
      ++level_;
      ++escalations_;
      violating_streak_ = 0;
      monitor_.clear();
      obs::counter("resilience.controller.escalations").add();
      return ControlAction::Escalate;
    }
    return ControlAction::Hold;
  }

  violating_streak_ = 0;
  if (level_ > 0 && comfortable(verdict)) {
    ++calm_streak_;
    if (calm_streak_ >= policy_.calm_windows) {
      --level_;
      ++deescalations_;
      calm_streak_ = 0;
      monitor_.clear();
      obs::counter("resilience.controller.deescalations").add();
      return ControlAction::Deescalate;
    }
  } else {
    calm_streak_ = 0;
  }
  return ControlAction::Hold;
}

}  // namespace axc::resilience
