/// \file verilog.hpp
/// Structural Verilog export.
///
/// The paper's open-source release ships synthesizable HDL next to the
/// C/MATLAB behavioural models; this writer provides the same artifact
/// from any axc::logic::Netlist — a gate-level Verilog module using only
/// primitive continuous assignments, accepted by any synthesis or
/// simulation tool.
#pragma once

#include <iosfwd>
#include <string>

#include "axc/logic/netlist.hpp"

namespace axc::logic {

/// Writes \p netlist as a self-contained structural Verilog module.
///
/// - module name: sanitized netlist name (or \p module_name if nonempty);
/// - ports: the netlist's primary inputs and outputs, in order, with
///   sanitized unique names;
/// - body: one `assign` per gate in topological order.
void write_verilog(const Netlist& netlist, std::ostream& os,
                   const std::string& module_name = "");

/// Convenience: returns the module text as a string.
std::string to_verilog(const Netlist& netlist,
                       const std::string& module_name = "");

/// Writes the module to a .v file. Throws std::runtime_error on I/O error.
void write_verilog_file(const Netlist& netlist, const std::string& path,
                        const std::string& module_name = "");

}  // namespace axc::logic
