/// \file mul_netlists.hpp
/// Structural realizations of the 2x2 multiplier blocks (Fig. 5) and the
/// recursive multi-bit approximate multipliers (Fig. 6).
#pragma once

#include "axc/arith/full_adder.hpp"
#include "axc/arith/mul2x2.hpp"
#include "axc/logic/netlist.hpp"

namespace axc::logic {

/// Instantiates a 2x2 multiplier block over existing nets; returns the four
/// product nets p0..p3 (ApxMul_SoA drives p3 with a constant 0).
std::vector<NetId> add_mul2x2(Netlist& netlist, arith::Mul2x2Kind kind,
                              NetId a0, NetId a1, NetId b0, NetId b1);

/// A standalone (non-configurable) 2x2 multiplier: inputs a0,a1,b0,b1;
/// outputs p0..p3.
Netlist mul2x2_netlist(arith::Mul2x2Kind kind);

/// The configurable variant (CfgMul of Fig. 5): an extra `exact` mode input
/// drives the correction stage — an adder-class fixup for the SoA block,
/// an LSB mux for ours (which is why CfgMul_Our is cheaper, the paper's
/// point in Sec. 5).
Netlist cfg_mul2x2_netlist(arith::Mul2x2Kind kind);

/// Parameters of a structural multi-bit multiplier, mirroring
/// arith::MultiplierConfig with the ripple partial-product adder family.
struct MulNetlistSpec {
  unsigned width = 4;  ///< power of two in [2, 16]
  arith::Mul2x2Kind block = arith::Mul2x2Kind::Accurate;
  arith::FullAdderKind adder_cell = arith::FullAdderKind::Accurate;
  unsigned approx_lsbs = 0;  ///< product bits below this significance
                             ///< are summed with `adder_cell` cells
};

/// A standalone recursive multiplier: inputs a0..aw-1, b0..bw-1; outputs
/// p0..p2w-1. Functionally equivalent to arith::ApproxMultiplier with the
/// same block/adder_cell/approx_lsbs configuration (asserted in tests).
Netlist multiplier_netlist(const MulNetlistSpec& spec);

/// A standalone Wallace-tree multiplier: AND-array partial products,
/// column compression with 3:2 / 2:2 compressors (approximate cells in
/// product columns below approx_lsbs) and an LSB-approximate final
/// carry-propagate adder. Functionally equivalent to
/// arith::WallaceMultiplier with the same configuration (tested).
Netlist wallace_netlist(unsigned width, arith::FullAdderKind cell,
                        unsigned approx_lsbs);

}  // namespace axc::logic
