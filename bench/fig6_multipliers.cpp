/// Regenerates Fig. 6: area, power and output quality of accurate and
/// approximate multipliers at 2x2, 4x4, 8x8 and 16x16 bit-widths.
///
/// Variants per width: the accurate reference, the two approximate 2x2
/// blocks with exact partial-product adders, and our block combined with
/// ApxFA3 adders below a quarter of the product width — a representative
/// slice of the block x adder x LSB-count space Sec. 5 describes.
#include <iostream>

#include "axc/arith/multiplier.hpp"
#include "axc/error/evaluate.hpp"
#include "axc/logic/mul_netlists.hpp"
#include "axc/logic/power.hpp"
#include "bench_util.hpp"

namespace {

struct Variant {
  const char* label;
  axc::arith::Mul2x2Kind block;
  axc::arith::FullAdderKind cell;
  bool approx_half_product;  // approximate product bits below the operand width
};

}  // namespace

int main() {
  using namespace axc;
  bench::banner("Fig. 6",
                "Accurate vs approximate multipliers, 2x2 .. 16x16");

  const Variant variants[] = {
      {"Accurate", arith::Mul2x2Kind::Accurate,
       arith::FullAdderKind::Accurate, false},
      {"ApxMul_SoA blocks", arith::Mul2x2Kind::SoA,
       arith::FullAdderKind::Accurate, false},
      {"ApxMul_Our blocks", arith::Mul2x2Kind::Ours,
       arith::FullAdderKind::Accurate, false},
      {"Our blocks + ApxFA3 LSBs", arith::Mul2x2Kind::Ours,
       arith::FullAdderKind::Apx3, true},
  };
  // For the combined variant, product bits below the operand width are
  // computed with approximate adder cells (half of the product width).

  Table table({"Width", "Variant", "Area [GE]", "Power [nW]", "Error rate",
               "NMED", "Max err"});
  for (const unsigned width : {2u, 4u, 8u, 16u}) {
    for (const Variant& variant : variants) {
      const unsigned approx_lsbs = variant.approx_half_product ? width : 0;

      arith::MultiplierConfig config;
      config.width = width;
      config.block = variant.block;
      config.adder_cell = variant.cell;
      config.approx_lsbs = approx_lsbs;
      const arith::ApproxMultiplier mul(config);

      error::EvalOptions opts;
      opts.samples = 1u << 18;
      const auto quality = error::evaluate_multiplier(mul, opts);

      logic::MulNetlistSpec spec;
      spec.width = width;
      spec.block = variant.block;
      spec.adder_cell = variant.cell;
      spec.approx_lsbs = approx_lsbs;
      const logic::Netlist netlist = logic::multiplier_netlist(spec);
      const double power =
          logic::estimate_random_power(netlist, 1024, 7).total_nw;

      table.add_row({std::to_string(width) + "x" + std::to_string(width),
                     variant.label, fmt(netlist.area_ge(), 1), fmt(power, 0),
                     fmt_pct(quality.error_rate, 2),
                     fmt(quality.normalized_med, 5),
                     std::to_string(quality.max_error)});
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::cout << "\nPaper shape reproduced: approximate blocks cut area/power\n"
               "at every width, with quality loss bounded (max error grows\n"
               "with the block weight, NMED stays small); adding approximate\n"
               "partial-product adder LSBs buys further power for a\n"
               "controlled NMED increase.\n";
  return 0;
}
