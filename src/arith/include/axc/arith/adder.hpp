/// \file adder.hpp
/// Multi-bit adder interface and the LSB-approximate ripple-carry adder.
///
/// Everything downstream (multipliers, SAD accelerators, filters) consumes
/// adders through the `Adder` interface so that any mix of accurate,
/// IMPACT-chain and GeAr adders can be dropped into a datapath — this is
/// the composability the paper's Fig. 7 methodology relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "axc/arith/full_adder.hpp"

namespace axc::arith {

/// Abstract N-bit unsigned adder. Operands are the low width() bits of the
/// arguments; the result carries width()+1 significant bits (carry-out is
/// bit width()).
class Adder {
 public:
  virtual ~Adder() = default;

  /// Bit-width of each operand.
  virtual unsigned width() const = 0;

  /// Adds the low width() bits of a and b (plus optional carry-in) and
  /// returns the (width()+1)-bit result of this adder's behaviour.
  virtual std::uint64_t add(std::uint64_t a, std::uint64_t b,
                            unsigned carry_in = 0) const = 0;

  /// Human-readable identity, e.g. "Ripple<ApxFA3 x4/8>" or "GeAr(8,2,2)".
  virtual std::string name() const = 0;

  /// True if add() is bit-exact for all inputs (used by the design-space
  /// explorer to short-circuit error analysis).
  virtual bool is_exact() const { return false; }
};

/// Factory signature: builds an adder of the requested width. Used by the
/// multiplier generator and accelerator builder, which need adders of
/// several widths from one family.
using AdderFactory = std::function<std::unique_ptr<Adder>(unsigned width)>;

/// Ready-made factory: ripple adders whose \p approx_lsbs low positions
/// use the \p kind approximate cell (clamped to the requested width).
AdderFactory ripple_adder_factory(FullAdderKind kind, unsigned approx_lsbs);

/// Exact two's-complement ripple adder (the baseline in every experiment).
class ExactAdder final : public Adder {
 public:
  explicit ExactAdder(unsigned width);

  unsigned width() const override { return width_; }
  std::uint64_t add(std::uint64_t a, std::uint64_t b,
                    unsigned carry_in) const override;
  std::string name() const override;
  bool is_exact() const override { return true; }

 private:
  unsigned width_;
};

/// Ripple-carry adder with a per-bit choice of full-adder cell.
///
/// The canonical use — the one evaluated in the paper's Figs. 6, 8, 9 —
/// approximates the low `k` bit positions with one of the ApxFA cells and
/// keeps the upper positions accurate ("approximating k LSBs").
class RippleAdder final : public Adder {
 public:
  /// \p cells[i] is the full-adder used at bit position i (i = 0 is LSB).
  explicit RippleAdder(std::vector<FullAdderKind> cells);

  /// Convenience: \p approx_lsbs positions of \p kind, the rest accurate.
  static RippleAdder lsb_approximated(unsigned width, FullAdderKind kind,
                                      unsigned approx_lsbs);

  unsigned width() const override {
    return static_cast<unsigned>(cells_.size());
  }
  std::uint64_t add(std::uint64_t a, std::uint64_t b,
                    unsigned carry_in) const override;
  std::string name() const override;
  bool is_exact() const override;

  const std::vector<FullAdderKind>& cells() const { return cells_; }

 private:
  std::vector<FullAdderKind> cells_;
};

/// Computes a - b as an (width+1)-bit two's-complement word using \p adder
/// for the addition a + ~b + 1 (this is how the paper's approximate
/// subtractors are realized from approximate adders). Bit `width` of the
/// result is the sign.
std::uint64_t subtract_via(const Adder& adder, std::uint64_t a,
                           std::uint64_t b);

/// |a - b| on width-bit operands, built from two subtract_via() paths the
/// way the SAD accelerator's absolute-difference stage is (Sec. 6).
std::uint64_t abs_diff_via(const Adder& adder, std::uint64_t a,
                           std::uint64_t b);

}  // namespace axc::arith
