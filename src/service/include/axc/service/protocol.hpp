/// \file protocol.hpp
/// Wire protocol of the axc design-space service.
///
/// The paper's methodology (Fig. 7) is a query workflow — "characterize
/// this configuration, evaluate its error metrics, rank the design space"
/// — and at production scale those queries arrive as traffic, not as
/// one-shot binaries. This file defines the typed request/response
/// vocabulary that axc::service::Server executes and both transports
/// (loopback, TCP) carry.
///
/// Encoding rules (the *canonical serialization*):
///  - every integer is fixed-width little-endian; doubles travel as the
///    IEEE-754 bit pattern in a u64 — so a given typed request has exactly
///    one byte representation and responses are byte-identical across
///    platforms and worker-thread counts;
///  - a request is  [version u8][endpoint u8][deadline_ms u32][body];
///  - a response is [version u8][status u8][served_level u8][body], where
///    the body is the endpoint's typed payload on Status::Ok and a
///    length-prefixed UTF-8 message otherwise. served_level is the
///    degrade-don't-drop tag (0 = full fidelity): under overload the
///    server walks approximate endpoints down an accuracy ladder instead
///    of rejecting, and the level byte tells the client which rung
///    actually answered (see overload.hpp);
///  - the result-cache key covers every request byte *except* the
///    deadline field (canonical_request_bytes strips it), so the same
///    query with a different deadline still hits the cache.
///
/// Transports frame payloads as [length u32 LE][payload], length capped at
/// kMaxFrameBytes (a rogue peer cannot trigger a giant allocation).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "axc/arith/full_adder.hpp"
#include "axc/arith/gear.hpp"
#include "axc/arith/mul2x2.hpp"
#include "axc/designspace/compressor_mul.hpp"
#include "axc/designspace/hetero_adder.hpp"
#include "axc/designspace/static_adder.hpp"
#include "axc/error/metrics.hpp"

namespace axc::service {

using Bytes = std::vector<std::uint8_t>;

inline constexpr std::uint8_t kProtocolVersion = 2;

/// Hard ceiling on one framed payload (requests and responses).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 22;

/// The service surface. Values are wire-stable; append only.
enum class Endpoint : std::uint8_t {
  CharacterizeAdder = 1,       ///< gate-level area/power of an adder config
  CharacterizeMultiplier = 2,  ///< gate-level area/power of a multiplier
  EvaluateError = 3,           ///< MED/ER/WCE/... of a config (Sec. 4-5)
  GearDesignSpace = 4,         ///< Table IV / Fig. 4 Pareto query
  EncodeProbe = 5,             ///< Fig. 9 SAD/encode micro-job
  Ping = 6,                    ///< health check, empty body
  Shutdown = 7,                ///< transport-level graceful stop (opt-in)
  CacheInsert = 8,             ///< cluster replication: seed a cache entry
  HeteroAdderDesignSpace = 9,   ///< heterogeneous block-adder Pareto query
  ArrayMulDesignSpace = 10,     ///< 4:2-compressor array-multiplier query
  StaticAdderDesignSpace = 11,  ///< LOA/LOAWA/HEAA static-adder query
};

/// Response status. Values are wire-stable; append only.
enum class Status : std::uint8_t {
  Ok = 0,
  BadRequest = 1,        ///< malformed or out-of-policy request
  Overloaded = 2,        ///< job queue full — explicit backpressure
  DeadlineExceeded = 3,  ///< expired in queue before a worker picked it up
  ShuttingDown = 4,      ///< server is draining; not accepting new work
  InternalError = 5,     ///< handler threw; message carries the what()
};

/// "characterize_adder", "ping", ... (used for obs instrument names and
/// the axc_client command line). Unknown values map to "unknown".
std::string_view endpoint_name(Endpoint endpoint);

/// "ok", "bad_request", ... Unknown values map to "unknown".
std::string_view status_name(Status status);

/// Thrown by decode helpers on truncated/inconsistent payloads.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by the typed client when a response carries a non-Ok status.
class ServiceError : public std::runtime_error {
 public:
  ServiceError(Status status, const std::string& message);
  Status status() const { return status_; }

 private:
  Status status_;
};

// --- Typed requests -------------------------------------------------------

/// Adder family selector for CharacterizeAdder.
enum class AdderFamily : std::uint8_t {
  Gear = 0,    ///< GeAr(n, r, p) — param_a = R, param_b = P
  Loa = 1,     ///< LOA(width, approx_lsbs) — param_a = approx_lsbs
  Etai = 2,    ///< ETAII(width, approx_lsbs) — param_a = approx_lsbs
  Ripple = 3,  ///< ripple with `cell` in the low param_a positions
};

struct CharacterizeAdderRequest {
  AdderFamily family = AdderFamily::Gear;
  std::uint32_t width = 8;    ///< operand width N
  std::uint32_t param_a = 2;  ///< R / approx_lsbs (see AdderFamily)
  std::uint32_t param_b = 2;  ///< P (GeAr only)
  arith::FullAdderKind cell = arith::FullAdderKind::Accurate;  ///< Ripple
  std::uint64_t vectors = 1024;  ///< power-sim stimulus vectors
  std::uint64_t seed = 1;
};

/// Multiplier structure selector for CharacterizeMultiplier.
enum class MultiplierStructure : std::uint8_t {
  Recursive = 0,  ///< recursive 2x2-block build-up (Fig. 6)
  Wallace = 1,    ///< Wallace tree with approximate compressors
};

struct CharacterizeMultiplierRequest {
  MultiplierStructure structure = MultiplierStructure::Recursive;
  std::uint32_t width = 8;  ///< power of two in [2, 16]
  arith::Mul2x2Kind block = arith::Mul2x2Kind::Accurate;  ///< Recursive only
  arith::FullAdderKind cell = arith::FullAdderKind::Accurate;
  std::uint32_t approx_lsbs = 0;
  std::uint64_t vectors = 1024;
  std::uint64_t seed = 1;
};

struct CharacterizeResponse {
  double area_ge = 0.0;
  double power_nw = 0.0;
  std::uint64_t gate_count = 0;
};

/// Target selector for EvaluateError.
enum class EvalTarget : std::uint8_t {
  GearAdder = 0,   ///< GeArAdder(gear, correction_iterations)
  Multiplier = 1,  ///< recursive ApproxMultiplier(mul config)
};

struct EvaluateErrorRequest {
  EvalTarget target = EvalTarget::GearAdder;
  // GearAdder fields.
  arith::GeArConfig gear{8, 2, 2};
  std::uint32_t correction_iterations = 0;
  // Multiplier fields.
  std::uint32_t mul_width = 8;
  arith::Mul2x2Kind mul_block = arith::Mul2x2Kind::Accurate;
  arith::FullAdderKind mul_cell = arith::FullAdderKind::Accurate;
  std::uint32_t mul_approx_lsbs = 0;
  // Evaluation policy (error::EvalOptions without the thread knob — worker
  // parallelism is a server policy, never part of the query identity).
  std::uint32_t max_exhaustive_bits = 20;
  std::uint64_t samples = 1u << 16;
  std::uint64_t seed = 0xA5C0FFEEULL;
};

struct EvaluateErrorResponse {
  std::uint64_t samples = 0;
  std::uint64_t error_count = 0;
  std::uint64_t max_error = 0;
  double error_rate = 0.0;
  double mean_error_distance = 0.0;
  double normalized_med = 0.0;
  double mean_relative_error = 0.0;
  double mean_squared_error = 0.0;
  double root_mean_squared_error = 0.0;
  bool exhaustive = false;
};

struct GearDesignSpaceRequest {
  std::uint32_t width = 11;       ///< operand width N (Table IV uses 11)
  std::uint32_t min_p = 1;        ///< prediction-width floor
  bool include_exact = false;     ///< add the degenerate L == N point
  bool estimate_power = false;    ///< run the (slow) power sim per config
  double min_accuracy = 90.0;     ///< constraint for min_area_index
};

struct GearDesignSpacePoint {
  std::uint32_t r = 0;
  std::uint32_t p = 0;
  double area_ge = 0.0;
  double power_nw = 0.0;
  double accuracy_percent = 0.0;
  bool on_pareto_front = false;
};

struct GearDesignSpaceResponse {
  std::vector<GearDesignSpacePoint> points;  ///< (R, P) lexicographic order
  /// Index of the paper's two selection queries; points.size() = none.
  std::uint32_t max_accuracy_index = 0;
  std::uint32_t min_area_index = 0;
};

/// The three designspace sweeps share the gear endpoint's shape: a small
/// request describing a configuration grid, a response listing every
/// point with its analytic error figures and Pareto marking, plus the two
/// selection indices (points.size() = none / infeasible).

struct HeteroAdderDesignSpaceRequest {
  std::uint32_t width = 16;        ///< operand width N
  std::uint32_t block_width = 4;   ///< bits per block (top takes remainder)
  bool include_truncated = true;   ///< also sweep Truncated low blocks
  bool estimate_power = false;     ///< run the power sim per config
  double min_accuracy = 90.0;      ///< constraint for min_area_index
};

struct HeteroAdderDesignSpacePoint {
  designspace::HeteroSubAdder low_kind = designspace::HeteroSubAdder::Accurate;
  std::uint32_t approx_blocks = 0;  ///< low blocks of low_kind
  double area_ge = 0.0;
  double power_nw = 0.0;
  double accuracy_percent = 0.0;  ///< 100 * (1 - error_rate)
  double error_rate = 0.0;        ///< closed-form, exact
  double med = 0.0;               ///< closed-form, exact
  double nmed = 0.0;
  std::uint64_t wce = 0;
  bool on_pareto_front = false;
};

struct HeteroAdderDesignSpaceResponse {
  std::vector<HeteroAdderDesignSpacePoint> points;
  std::uint32_t max_accuracy_index = 0;
  std::uint32_t min_area_index = 0;
};

struct ArrayMulDesignSpaceRequest {
  std::uint32_t width = 8;              ///< operand width N in [2, 16]
  std::uint32_t max_approx_columns = 8; ///< sweep 1..this per compressor
  bool estimate_power = false;
  double min_accuracy = 90.0;
};

struct ArrayMulDesignSpacePoint {
  designspace::CompressorKind compressor = designspace::CompressorKind::Exact42;
  std::uint32_t approx_columns = 0;
  double area_ge = 0.0;
  double power_nw = 0.0;
  double accuracy_percent = 0.0;  ///< 100 * (1 - error_rate_est)
  double error_rate_est = 0.0;    ///< probabilistic (see MulErrorModel)
  double med_est = 0.0;
  double nmed_est = 0.0;
  bool model_exact = false;  ///< estimates are exact zeros for this point
  bool on_pareto_front = false;
};

struct ArrayMulDesignSpaceResponse {
  std::vector<ArrayMulDesignSpacePoint> points;
  std::uint32_t max_accuracy_index = 0;
  std::uint32_t min_area_index = 0;
};

struct StaticAdderDesignSpaceRequest {
  std::uint32_t width = 16;          ///< operand width N
  std::uint32_t max_approx_lsbs = 8; ///< sweep 1..this per family
  bool estimate_power = false;
  double min_accuracy = 90.0;
};

struct StaticAdderDesignSpacePoint {
  designspace::StaticAdderKind kind = designspace::StaticAdderKind::Loa;
  std::uint32_t approx_lsbs = 0;
  double area_ge = 0.0;
  double power_nw = 0.0;
  double accuracy_percent = 0.0;
  double error_rate = 0.0;  ///< exact (4^k enumeration)
  double med = 0.0;
  double nmed = 0.0;
  std::uint64_t wce = 0;
  bool on_pareto_front = false;
};

struct StaticAdderDesignSpaceResponse {
  std::vector<StaticAdderDesignSpacePoint> points;
  std::uint32_t max_accuracy_index = 0;
  std::uint32_t min_area_index = 0;
};

struct EncodeProbeRequest {
  std::uint16_t width = 64;
  std::uint16_t height = 64;
  std::uint16_t frames = 4;
  std::uint16_t objects = 2;
  std::uint64_t sequence_seed = 42;
  std::uint8_t sad_variant = 0;  ///< 0 = accurate, 1..5 = ApxSAD1..5
  std::uint8_t approx_lsbs = 0;
  std::uint8_t block_size = 8;
  std::uint8_t search_range = 2;
  std::uint16_t quant_step = 8;
};

struct EncodeProbeResponse {
  std::uint64_t total_bits = 0;
  double bits_per_frame = 0.0;
  double psnr_db = 0.0;
  std::uint64_t sad_calls = 0;
};

// --- Request encoding / header parsing ------------------------------------

struct RequestHeader {
  std::uint8_t version = kProtocolVersion;
  Endpoint endpoint = Endpoint::Ping;
  std::uint32_t deadline_ms = 0;  ///< 0 = no deadline
};

inline constexpr std::size_t kRequestHeaderBytes = 6;

/// Parses the fixed header; nullopt when truncated, unknown version or
/// unknown endpoint (the server answers BadRequest).
std::optional<RequestHeader> parse_request_header(
    std::span<const std::uint8_t> request);

Bytes encode_request(const CharacterizeAdderRequest& request,
                     std::uint32_t deadline_ms = 0);
Bytes encode_request(const CharacterizeMultiplierRequest& request,
                     std::uint32_t deadline_ms = 0);
Bytes encode_request(const EvaluateErrorRequest& request,
                     std::uint32_t deadline_ms = 0);
Bytes encode_request(const GearDesignSpaceRequest& request,
                     std::uint32_t deadline_ms = 0);
Bytes encode_request(const HeteroAdderDesignSpaceRequest& request,
                     std::uint32_t deadline_ms = 0);
Bytes encode_request(const ArrayMulDesignSpaceRequest& request,
                     std::uint32_t deadline_ms = 0);
Bytes encode_request(const StaticAdderDesignSpaceRequest& request,
                     std::uint32_t deadline_ms = 0);
Bytes encode_request(const EncodeProbeRequest& request,
                     std::uint32_t deadline_ms = 0);
/// Body-less requests (Ping, Shutdown).
Bytes encode_request(Endpoint endpoint, std::uint32_t deadline_ms = 0);

// --- Cluster replication (Endpoint::CacheInsert) --------------------------

/// One replicated cache entry: the canonical bytes of the original
/// request (version + endpoint + body, deadline stripped) and its
/// full-fidelity Ok response. Carried as the CacheInsert request body
/// [canonical_len u32][canonical][response]; the receiving server
/// validates both halves before seeding its result cache (see
/// ServerOptions::accept_cache_inserts).
struct CacheInsertRequest {
  Bytes canonical;
  Bytes response;
};

Bytes encode_request(const CacheInsertRequest& request,
                     std::uint32_t deadline_ms = 0);
CacheInsertRequest decode_cache_insert(std::span<const std::uint8_t> body);

/// Throwing (DecodeError) typed decoders for the server side. Each
/// consumes the *body* (header already parsed) and rejects trailing bytes.
CharacterizeAdderRequest decode_characterize_adder(
    std::span<const std::uint8_t> body);
CharacterizeMultiplierRequest decode_characterize_multiplier(
    std::span<const std::uint8_t> body);
EvaluateErrorRequest decode_evaluate_error(std::span<const std::uint8_t> body);
GearDesignSpaceRequest decode_gear_design_space(
    std::span<const std::uint8_t> body);
HeteroAdderDesignSpaceRequest decode_hetero_adder_design_space(
    std::span<const std::uint8_t> body);
ArrayMulDesignSpaceRequest decode_array_mul_design_space(
    std::span<const std::uint8_t> body);
StaticAdderDesignSpaceRequest decode_static_adder_design_space(
    std::span<const std::uint8_t> body);
EncodeProbeRequest decode_encode_probe(std::span<const std::uint8_t> body);

// --- Response encoding / decoding -----------------------------------------

Bytes encode_response(const CharacterizeResponse& response);
Bytes encode_response(const EvaluateErrorResponse& response);
Bytes encode_response(const GearDesignSpaceResponse& response);
Bytes encode_response(const HeteroAdderDesignSpaceResponse& response);
Bytes encode_response(const ArrayMulDesignSpaceResponse& response);
Bytes encode_response(const StaticAdderDesignSpaceResponse& response);
Bytes encode_response(const EncodeProbeResponse& response);
/// Body-less Ok (Ping, Shutdown).
Bytes encode_ok_response();
/// Non-Ok response carrying a diagnostic message.
Bytes encode_error_response(Status status, std::string_view message);

/// Fixed response header: [version u8][status u8][served_level u8].
inline constexpr std::size_t kResponseHeaderBytes = 3;

/// Status of an encoded response; nullopt when truncated / bad version.
std::optional<Status> response_status(std::span<const std::uint8_t> response);

/// Served accuracy level of an encoded response (0 = full fidelity);
/// nullopt when truncated / bad version.
std::optional<std::uint8_t> response_level(
    std::span<const std::uint8_t> response);

/// Stamps the served accuracy level into an already-encoded response.
/// Throws std::invalid_argument when the response is shorter than a header.
void set_response_level(Bytes& response, std::uint8_t level);

/// Typed decoders for the client side: return the payload on Status::Ok,
/// throw ServiceError carrying the server's status + message otherwise,
/// DecodeError on malformed bytes.
CharacterizeResponse decode_characterize_response(
    std::span<const std::uint8_t> response);
EvaluateErrorResponse decode_evaluate_error_response(
    std::span<const std::uint8_t> response);
GearDesignSpaceResponse decode_gear_design_space_response(
    std::span<const std::uint8_t> response);
HeteroAdderDesignSpaceResponse decode_hetero_adder_design_space_response(
    std::span<const std::uint8_t> response);
ArrayMulDesignSpaceResponse decode_array_mul_design_space_response(
    std::span<const std::uint8_t> response);
StaticAdderDesignSpaceResponse decode_static_adder_design_space_response(
    std::span<const std::uint8_t> response);
EncodeProbeResponse decode_encode_probe_response(
    std::span<const std::uint8_t> response);
/// For body-less Ok responses; throws like the typed decoders.
void decode_ok_response(std::span<const std::uint8_t> response);

// --- Canonicalization (cache identity) ------------------------------------

/// The request minus its deadline field — the byte string whose hash keys
/// the result cache. Throws DecodeError on requests shorter than a header.
Bytes canonical_request_bytes(std::span<const std::uint8_t> request);

/// 64-bit key over canonical bytes, built with the same SplitMix64-style
/// combiner as the characterization memo (logic::detail::mix_key) so every
/// cache in the system shares one mixing discipline.
std::uint64_t canonical_request_key(std::span<const std::uint8_t> canonical);

// --- Framing --------------------------------------------------------------

/// Appends [length u32 LE][payload] to \p out. Throws std::invalid_argument
/// when payload exceeds kMaxFrameBytes.
void append_frame(Bytes& out, std::span<const std::uint8_t> payload);

}  // namespace axc::service
