#include "axc/logic/bitsliced.hpp"

#include <bit>

#include "axc/common/bits.hpp"
#include "axc/common/require.hpp"
#include "axc/logic/tape_engine.hpp"
#include "axc/obs/obs.hpp"

namespace axc::logic {

namespace {

// Lane values of input i for counting stimulus base + k with base
// 64-aligned: bit i of (base + k) is periodic in k for i < 6 and constant
// (= bit i of base) otherwise.
constexpr std::uint64_t kCountingPattern[6] = {
    0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
    0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL,
};

}  // namespace

void pack_counting_lanes(std::uint64_t base, unsigned num_inputs,
                         unsigned lanes, std::span<std::uint64_t> words) {
  require(num_inputs <= 64 && words.size() >= num_inputs,
          "pack_counting_lanes: > 64 inputs or destination too small");
  require(lanes >= 1 && lanes <= BitslicedSimulator::kLanes,
          "pack_counting_lanes: lanes must be in [1, 64]");
  if (base % BitslicedSimulator::kLanes == 0) {
    for (unsigned i = 0; i < num_inputs; ++i) {
      words[i] = i < 6 ? kCountingPattern[i]
                       : (bit_of(base, i) ? ~std::uint64_t{0} : 0);
    }
    return;
  }
  // Unaligned base (only the 1-lane scalar wrapper takes this path): pack
  // lane by lane.
  for (unsigned i = 0; i < num_inputs; ++i) words[i] = 0;
  for (unsigned k = 0; k < lanes; ++k) {
    const std::uint64_t word = base + k;
    for (unsigned i = 0; i < num_inputs; ++i) {
      words[i] |= static_cast<std::uint64_t>(bit_of(word, i)) << k;
    }
  }
}

BitslicedSimulator::BitslicedSimulator(const Netlist& netlist,
                                       SimEngine engine)
    : netlist_(netlist),
      engine_(engine),
      tape_(engine == SimEngine::Compiled ? compile_netlist(netlist)
                                          : nullptr),
      net_word_(netlist.net_count(), 0),
      gate_toggles_(netlist.gate_count(), 0),
      out_words_(netlist.outputs().size(), 0) {
  // Constant nets hold their value in every lane for the whole simulation.
  for (NetId net = 0; net < netlist.net_count(); ++net) {
    if (netlist.driver(net) == CellType::Const1) {
      net_word_[net] = ~std::uint64_t{0};
    }
  }
}

std::span<const std::uint64_t> BitslicedSimulator::apply_lanes(
    std::span<const std::uint64_t> input_words, unsigned lanes) {
  const auto& inputs = netlist_.inputs();
  require(input_words.size() == inputs.size(),
          "BitslicedSimulator::apply_lanes: stimulus width does not match "
          "primary inputs");
  require(lanes >= 1 && lanes <= kLanes,
          "BitslicedSimulator::apply_lanes: lanes must be in [1, 64]");
  // One gate-list pass advances `lanes` vectors; the occupancy histogram is
  // how a run report shows whether batching actually fills the 64 lanes.
  static obs::Counter& passes = obs::counter("logic.sim.passes");
  static obs::Histogram& occupancy =
      obs::histogram("logic.sim.lane_occupancy");
  passes.add();
  occupancy.record(lanes);
  const std::uint64_t lane_mask = low_mask(lanes);
  // Merge the stimulus under the active-lane mask: inactive lanes keep
  // their previous input values, so the full gate-list recompute below
  // holds every one of their nets at exactly the value it last had while
  // the lane was active (the netlist is combinational and evaluated in
  // topological order). Overwriting all 64 bits here would clobber that
  // state on a partial-lane pass and the next wider pass would count
  // toggles against the clobbered values instead.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    net_word_[inputs[i]] = (net_word_[inputs[i]] & ~lane_mask) |
                           (input_words[i] & lane_mask);
  }

  // Only lanes that already received a baseline vector contribute
  // transitions; lanes seen for the first time in this call establish
  // state without counting (per-lane analogue of the scalar simulator's
  // baseline vector). Together with the masked stimulus merge above this
  // makes arbitrary shrink/grow lane patterns — e.g. a remainder batch
  // followed by a full one — exact: each lane's toggles are counted
  // against the last value *that lane* actually held while active.
  const std::uint64_t counted_mask = lane_mask & baselined_lanes_;
  if (engine_ == SimEngine::Compiled) {
    // Straight-line tape pass: same values in the same nets (the tape
    // order is topological), toggle counters accumulated in tape order
    // (gate_toggles() translates back via op_of_gate).
    if (counted_mask == 0) {
      detail::execute_tape<std::uint64_t, false>(*tape_, net_word_.data(),
                                                 nullptr, counted_mask);
    } else {
      detail::execute_tape<std::uint64_t, true>(
          *tape_, net_word_.data(), gate_toggles_.data(), counted_mask);
    }
  } else {
    const auto& gates = netlist_.gates();
    if (counted_mask == 0) {
      for (std::size_t g = 0; g < gates.size(); ++g) {
        const Gate& gate = gates[g];
        net_word_[gate.out] =
            eval_cell_word(gate.type, net_word_[gate.in[0]],
                           net_word_[gate.in[1]], net_word_[gate.in[2]]);
      }
    } else {
      for (std::size_t g = 0; g < gates.size(); ++g) {
        const Gate& gate = gates[g];
        const std::uint64_t value =
            eval_cell_word(gate.type, net_word_[gate.in[0]],
                           net_word_[gate.in[1]], net_word_[gate.in[2]]);
        gate_toggles_[g] += static_cast<std::uint64_t>(
            std::popcount((value ^ net_word_[gate.out]) & counted_mask));
        net_word_[gate.out] = value;
      }
    }
  }
  transition_pairs_ += static_cast<std::uint64_t>(std::popcount(counted_mask));
  baselined_lanes_ |= lane_mask;
  vectors_applied_ += lanes;

  const auto& outputs = netlist_.outputs();
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    out_words_[i] = net_word_[outputs[i]];
  }
  return out_words_;
}

std::span<const std::uint64_t> BitslicedSimulator::apply_word_range(
    std::uint64_t base, unsigned lanes) {
  const std::size_t n_in = netlist_.inputs().size();
  require(n_in <= 64, "BitslicedSimulator::apply_word_range: > 64 inputs");
  in_scratch_.resize(n_in);
  pack_counting_lanes(base, static_cast<unsigned>(n_in), lanes, in_scratch_);
  return apply_lanes(in_scratch_, lanes);
}

std::uint64_t BitslicedSimulator::lane_output(unsigned lane) const {
  const auto& outputs = netlist_.outputs();
  require(lane < kLanes && outputs.size() <= 64,
          "BitslicedSimulator::lane_output: lane or output count out of "
          "range");
  std::uint64_t word = 0;
  for (std::size_t j = 0; j < outputs.size(); ++j) {
    word |= ((out_words_[j] >> lane) & 1u) << j;
  }
  return word;
}

double BitslicedSimulator::switched_energy_fj() const {
  double energy = 0.0;
  const auto& gates = netlist_.gates();
  if (engine_ == SimEngine::Compiled) {
    // Same gate-order summation as below, just with the per-gate toggle
    // counters fetched through op_of_gate — identical FP association,
    // hence byte-identical totals.
    for (std::size_t g = 0; g < gates.size(); ++g) {
      energy += static_cast<double>(gate_toggles_[tape_->op_of_gate[g]]) *
                tape_->gate_energy_fj[g];
    }
    return energy;
  }
  for (std::size_t g = 0; g < gates.size(); ++g) {
    energy += static_cast<double>(gate_toggles_[g]) *
              cell_info(gates[g].type).energy_fj;
  }
  return energy;
}

void BitslicedSimulator::reset_activity() {
  gate_toggles_.assign(gate_toggles_.size(), 0);
  vectors_applied_ = 0;
  transition_pairs_ = 0;
  baselined_lanes_ = 0;
}

}  // namespace axc::logic
