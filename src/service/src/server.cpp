#include "axc/service/server.hpp"

#include <algorithm>
#include <future>
#include <mutex>
#include <string>

#include "axc/obs/obs.hpp"

namespace axc::service {

namespace {

constexpr int kEndpointSlots =
    static_cast<int>(Endpoint::StaticAdderDesignSpace) + 1;

/// Per-endpoint instruments, resolved once (obs handles are stable for the
/// process lifetime, so after the first call this is a plain array load).
struct EndpointInstruments {
  obs::Counter* requests[kEndpointSlots] = {};
  obs::SpanStat* latency[kEndpointSlots] = {};
};

const EndpointInstruments& endpoint_instruments() {
  static const EndpointInstruments instance = [] {
    EndpointInstruments out;
    for (int i = 1; i < kEndpointSlots; ++i) {
      const std::string name(endpoint_name(static_cast<Endpoint>(i)));
      out.requests[i] = &obs::counter("service." + name + ".requests");
      out.latency[i] = &obs::span("service.latency." + name);
    }
    return out;
  }();
  return instance;
}

bool is_cacheable(Endpoint endpoint) {
  // Ping carries no result, Shutdown is transport-level and CacheInsert
  // is the replication channel itself; everything else is a pure function
  // of its canonical bytes.
  return endpoint != Endpoint::Ping && endpoint != Endpoint::Shutdown &&
         endpoint != Endpoint::CacheInsert;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_shards),
      overload_(options_.overload) {
  if (options_.workers == 0) {
    options_.workers = std::max(1u, std::thread::hardware_concurrency());
  }
  if (options_.dispatcher) {
    dispatcher_ = options_.dispatcher;
  } else {
    const unsigned eval_threads = options_.eval_threads;
    dispatcher_ = [eval_threads](std::span<const std::uint8_t> request,
                                 unsigned degrade_level) {
      DispatchOptions dispatch_options;
      dispatch_options.eval_threads = eval_threads;
      dispatch_options.degrade_level = degrade_level;
      return dispatch(request, dispatch_options);
    };
  }
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { stop(); }

void Server::submit(Bytes request, ResponseCallback done) {
  static obs::Counter& total = obs::counter("service.requests");
  static obs::Counter& bad = obs::counter("service.rejected.bad_request");
  static obs::Counter& shedding =
      obs::counter("service.rejected.overloaded");
  static obs::Counter& draining =
      obs::counter("service.rejected.shutting_down");
  static obs::Counter& cache_hits = obs::counter("service.cache.hits");
  static obs::Counter& cache_misses = obs::counter("service.cache.misses");
  static obs::Histogram& depth = obs::histogram("service.queue_depth");

  total.add();
  const std::optional<RequestHeader> header = parse_request_header(request);
  if (!header) {
    bad.add();
    done(encode_error_response(Status::BadRequest,
                               "unparseable request header"));
    return;
  }
  endpoint_instruments().requests[static_cast<int>(header->endpoint)]->add();

  if (header->endpoint == Endpoint::CacheInsert) {
    // Synchronous: seeding a replica entry is a couple of hash-map moves,
    // and queuing it behind compute jobs would let a draining or
    // overloaded node lose replication it already earned.
    done(handle_cache_insert(request));
    return;
  }

  Job job;
  job.endpoint = header->endpoint;
  job.cacheable = is_cacheable(header->endpoint) && cache_.capacity() > 0;
  if (job.cacheable) {
    job.canonical = canonical_request_bytes(request);
    job.cache_key = canonical_request_key(job.canonical);
    if (std::optional<Bytes> cached =
            cache_.lookup(job.cache_key, job.canonical)) {
      cache_hits.add();
      done(std::move(*cached));
      return;
    }
    cache_misses.add();
  }
  if (header->deadline_ms != 0) {
    job.has_deadline = true;
    job.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(header->deadline_ms);
  }
  job.request = std::move(request);
  job.done = std::move(done);

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_) {
      draining.add();
      job.done(encode_error_response(Status::ShuttingDown,
                                     "server is draining"));
      return;
    }
    if (queue_.size() >= options_.queue_capacity) {
      shedding.add();
      job.done(encode_error_response(
          Status::Overloaded,
          "job queue full (" + std::to_string(options_.queue_capacity) +
              " pending)"));
      return;
    }
    // Admission-time depth (this job included) feeds the degrade ladder;
    // under the same lock, so a deterministic submission schedule yields a
    // deterministic level trajectory.
    job.degrade_level = overload_.admit(queue_.size() + 1);
    queue_.push_back(std::move(job));
    depth.record(static_cast<std::int64_t>(queue_.size()));
  }
  work_available_.notify_one();
}

Bytes Server::handle_cache_insert(std::span<const std::uint8_t> request) {
  static obs::Counter& accepted =
      obs::counter("service.cluster.cache_inserts");
  static obs::Counter& rejected =
      obs::counter("service.cluster.cache_insert_rejects");
  if (!options_.accept_cache_inserts) {
    rejected.add();
    return encode_error_response(
        Status::BadRequest, "cache inserts not enabled on this server");
  }
  CacheInsertRequest insert;
  try {
    insert = decode_cache_insert(request.subspan(kRequestHeaderBytes));
  } catch (const DecodeError& e) {
    rejected.add();
    return encode_error_response(Status::BadRequest, e.what());
  }
  // The canonical half must be a well-formed [version][endpoint][body]
  // for a cacheable endpoint, and the response half a full-fidelity Ok —
  // the only bytes insert()/run_job would ever have cached locally. A
  // peer cannot seed degraded, error or transport-level entries.
  if (insert.canonical.size() < 2 ||
      insert.canonical[0] != kProtocolVersion) {
    rejected.add();
    return encode_error_response(Status::BadRequest,
                                 "cache_insert: malformed canonical bytes");
  }
  const std::uint8_t raw_endpoint = insert.canonical[1];
  if (raw_endpoint <
          static_cast<std::uint8_t>(Endpoint::CharacterizeAdder) ||
      raw_endpoint > static_cast<std::uint8_t>(Endpoint::EncodeProbe)) {
    rejected.add();
    return encode_error_response(
        Status::BadRequest, "cache_insert: endpoint is not cacheable");
  }
  if (response_status(insert.response) != Status::Ok ||
      response_level(insert.response).value_or(255) != 0) {
    rejected.add();
    return encode_error_response(
        Status::BadRequest,
        "cache_insert: response is not a full-fidelity Ok");
  }
  const std::uint64_t key = canonical_request_key(insert.canonical);
  cache_.insert_replica(key, insert.canonical, std::move(insert.response));
  accepted.add();
  return encode_ok_response();
}

Bytes Server::call(std::span<const std::uint8_t> request) {
  std::promise<Bytes> promise;
  std::future<Bytes> future = promise.get_future();
  submit(Bytes(request.begin(), request.end()),
         [&promise](Bytes response) { promise.set_value(std::move(response)); });
  return future.get();
}

void Server::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
    joining_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void Server::request_stop() {
  const std::lock_guard<std::mutex> lock(mutex_);
  accepting_ = false;
}

bool Server::stopping() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return !accepting_;
}

std::size_t Server::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void Server::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return !queue_.empty() || joining_; });
      if (queue_.empty()) return;  // joining_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    run_job(job);
  }
}

void Server::run_job(Job& job) {
  static obs::Counter& expired = obs::counter("service.rejected.deadline");
  static obs::Counter& completed = obs::counter("service.completed");
  static obs::Counter& internal = obs::counter("service.errors.internal");
  static obs::Counter& bad = obs::counter("service.rejected.bad_request");
  static obs::Counter& degraded =
      obs::counter("service.degraded_responses");

  if (job.has_deadline &&
      std::chrono::steady_clock::now() > job.deadline) {
    expired.add();
    job.done(encode_error_response(Status::DeadlineExceeded,
                                   "deadline expired while queued"));
    return;
  }
  Bytes response;
  {
    obs::Span span(
        *endpoint_instruments().latency[static_cast<int>(job.endpoint)]);
    response = dispatcher_(job.request, job.degrade_level);
  }
  const std::optional<Status> status = response_status(response);
  if (status == Status::InternalError) internal.add();
  if (status == Status::BadRequest) bad.add();  // body decode/policy errors
  const std::uint8_t served_level = response_level(response).value_or(0);
  if (served_level > 0) degraded.add();
  // Only full-fidelity answers enter the cache: a degraded response must
  // never outlive the overload that produced it (and a later cache hit on
  // the same key must be the best-known answer, not the cheapest).
  if (job.cacheable && status == Status::Ok && served_level == 0) {
    cache_.insert(job.cache_key, job.canonical, response);
  }
  completed.add();
  job.done(std::move(response));
}

}  // namespace axc::service
