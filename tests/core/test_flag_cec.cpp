#include <gtest/gtest.h>

#include <cstdlib>

#include "axc/common/rng.hpp"
#include "axc/core/cec.hpp"

namespace axc::core {
namespace {

using arith::GeArAdder;
using arith::GeArConfig;

TEST(FlagDrivenCec, BoundaryWeightsAreWindowUlps) {
  const FlagDrivenCec cec(GeArConfig{12, 2, 2});
  // Boundaries at sub-adders 2..5: weights 2^(2*i + 2).
  EXPECT_EQ(cec.boundary_weight(0), 16);
  EXPECT_EQ(cec.boundary_weight(1), 64);
  EXPECT_EQ(cec.boundary_weight(2), 256);
  EXPECT_EQ(cec.boundary_weight(3), 1024);
  EXPECT_THROW(cec.boundary_weight(4), std::invalid_argument);
}

TEST(FlagDrivenCec, OffsetSumsFlaggedWeights) {
  const FlagDrivenCec cec(GeArConfig{12, 2, 2});
  EXPECT_EQ(cec.offset_for({false, false, false, false}), 0);
  EXPECT_EQ(cec.offset_for({true, false, true, false}), 16 + 256);
  EXPECT_EQ(cec.offset_for({true, true, true, true}), 16 + 64 + 256 + 1024);
  EXPECT_THROW(cec.offset_for({true}), std::invalid_argument);
}

// The headline property: flag-driven consolidated correction recovers the
// exact sum on (nearly) every input — exhaustively checked on an 8-bit
// configuration, where the wrap case does not occur.
TEST(FlagDrivenCec, ExhaustivelyExactOn8Bit) {
  const GeArConfig config{8, 2, 2};
  const GeArAdder adder(config);
  const FlagDrivenCec cec(config);
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      ASSERT_EQ(cec.correct(adder, a, b), a + b) << a << "+" << b;
    }
  }
}

TEST(FlagDrivenCec, ExactOnWiderConfigs) {
  // The output-word addition rips carries through wrapped result fields,
  // so the consolidated correction is exact — not just "mostly" exact.
  for (const GeArConfig config :
       {GeArConfig{12, 2, 2}, GeArConfig{16, 4, 4}, GeArConfig{16, 2, 2},
        GeArConfig{16, 1, 1}, GeArConfig{20, 2, 4}}) {
    const GeArAdder adder(config);
    const FlagDrivenCec cec(config);
    axc::Rng rng(71);
    int raw_errors = 0, corrected_errors = 0;
    constexpr int kSamples = 200000;
    for (int i = 0; i < kSamples; ++i) {
      const std::uint64_t a = rng.bits(config.n);
      const std::uint64_t b = rng.bits(config.n);
      raw_errors += adder.add(a, b, 0) != a + b;
      corrected_errors += cec.correct(adder, a, b) != a + b;
    }
    EXPECT_GT(raw_errors, 0) << config.name();
    EXPECT_EQ(corrected_errors, 0) << config.name();
  }
}

TEST(FlagDrivenCec, ExhaustivelyExactOn10BitNarrowWindows) {
  const GeArConfig config{10, 1, 1};
  const GeArAdder adder(config);
  const FlagDrivenCec cec(config);
  for (std::uint64_t a = 0; a < 1024; ++a) {
    for (std::uint64_t b = 0; b < 1024; ++b) {
      ASSERT_EQ(cec.correct(adder, a, b), a + b);
    }
  }
}

TEST(FlagDrivenCec, MatchesObservedErrorSupport) {
  // Every observed error magnitude of GeAr(12,2,2) must be expressible as
  // a sum of boundary weights — the mechanism behind Sec. 6.1's "specific
  // values" observation.
  const GeArConfig config{12, 2, 2};
  const GeArAdder adder(config);
  const FlagDrivenCec cec(config);
  const auto dist = error::adder_error_distribution(adder);
  for (const std::int64_t e : dist.support()) {
    if (e == 0) continue;
    // Decompose -e over weights {16, 64, 256, 1024} greedily.
    std::int64_t remaining = -e;
    for (unsigned i = 4; i-- > 0;) {
      const std::int64_t w = cec.boundary_weight(i);
      if (remaining >= w) remaining -= w;
    }
    EXPECT_EQ(remaining, 0) << "error " << e;
  }
}

TEST(FlagDrivenCec, ConfigMismatchRejected) {
  const FlagDrivenCec cec(GeArConfig{8, 2, 2});
  const GeArAdder other({8, 1, 1});
  EXPECT_THROW(cec.correct(other, 1, 2), std::invalid_argument);
}

TEST(FlagDrivenCec, InvalidConfigRejected) {
  EXPECT_THROW(FlagDrivenCec(GeArConfig{8, 3, 3}), std::invalid_argument);
}

}  // namespace
}  // namespace axc::core
