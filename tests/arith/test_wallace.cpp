#include "axc/arith/wallace.hpp"

#include <gtest/gtest.h>

#include "axc/common/rng.hpp"
#include "axc/error/evaluate.hpp"

namespace axc::arith {
namespace {

TEST(Wallace, ExactConfigMatchesProduct8BitExhaustive) {
  const WallaceMultiplier mul(WallaceConfig{8, FullAdderKind::Accurate, 0});
  EXPECT_TRUE(mul.is_exact());
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      ASSERT_EQ(mul.multiply(a, b), a * b);
    }
  }
}

TEST(Wallace, ExactConfigMatchesProduct16BitSampled) {
  const WallaceMultiplier mul(WallaceConfig{16, FullAdderKind::Accurate, 0});
  axc::Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    ASSERT_EQ(mul.multiply(a, b), a * b);
  }
}

TEST(Wallace, OddWidthsSupported) {
  // Unlike the recursive 2x2 decomposition, the Wallace structure is not
  // limited to power-of-two widths.
  const WallaceMultiplier mul(WallaceConfig{5, FullAdderKind::Accurate, 0});
  for (unsigned a = 0; a < 32; ++a) {
    for (unsigned b = 0; b < 32; ++b) {
      ASSERT_EQ(mul.multiply(a, b), a * b);
    }
  }
}

class WallaceApprox
    : public ::testing::TestWithParam<std::tuple<FullAdderKind, unsigned>> {};

TEST_P(WallaceApprox, ErrorsConfinedNearApproxColumns) {
  const auto [cell, lsbs] = GetParam();
  const WallaceMultiplier mul(WallaceConfig{8, cell, lsbs});
  EXPECT_FALSE(mul.is_exact());
  std::uint64_t worst = 0;
  for (unsigned a = 0; a < 256; a += 3) {
    for (unsigned b = 0; b < 256; b += 5) {
      const std::uint64_t approx = mul.multiply(a, b);
      const std::uint64_t exact = a * b;
      worst = std::max(worst,
                       approx > exact ? approx - exact : exact - approx);
    }
  }
  // Approximate compressors in columns < lsbs perturb the product by at
  // most a few carries escaping just above the region.
  EXPECT_GT(worst, 0u);
  EXPECT_LT(worst, std::uint64_t{1} << (lsbs + 4));
}

INSTANTIATE_TEST_SUITE_P(
    CellsAndColumns, WallaceApprox,
    ::testing::Combine(::testing::Values(FullAdderKind::Apx1,
                                         FullAdderKind::Apx2,
                                         FullAdderKind::Apx3,
                                         FullAdderKind::Apx4),
                       ::testing::Values(3u, 5u, 8u)));

TEST(Wallace, NmedGrowsWithApproxColumns) {
  double previous = -1.0;
  for (const unsigned lsbs : {0u, 2u, 4u, 8u, 12u}) {
    const WallaceMultiplier mul(
        WallaceConfig{8, FullAdderKind::Apx3, lsbs});
    error::EvalOptions opts;
    opts.samples = 1u << 16;
    const auto stats = error::evaluate_function(
        16, 255 * 255,
        [&](std::uint64_t w) { return mul.multiply(w & 0xFF, w >> 8); },
        [&](std::uint64_t w) { return (w & 0xFF) * (w >> 8); }, opts);
    EXPECT_GE(stats.mean_error_distance, previous) << "lsbs " << lsbs;
    previous = stats.mean_error_distance;
  }
}

TEST(Wallace, NameAndValidation) {
  EXPECT_EQ(WallaceMultiplier(WallaceConfig{8, FullAdderKind::Apx2, 6}).name(),
            "Wallace8x8<ApxFA2 below bit 6>");
  EXPECT_EQ(
      WallaceMultiplier(WallaceConfig{8, FullAdderKind::Accurate, 0}).name(),
      "Wallace8x8<Exact>");
  EXPECT_THROW(WallaceMultiplier(WallaceConfig{1, FullAdderKind::Apx1, 0}),
               std::invalid_argument);
  EXPECT_THROW(WallaceMultiplier(WallaceConfig{8, FullAdderKind::Apx1, 17}),
               std::invalid_argument);
}

}  // namespace
}  // namespace axc::arith
