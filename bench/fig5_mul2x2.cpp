/// Regenerates Fig. 5: truth tables of the 2x2 multipliers and the
/// area/power/error characterization of the accurate, approximate and
/// configurable variants.
#include <iostream>

#include "axc/arith/mul2x2.hpp"
#include "axc/logic/characterize.hpp"
#include "bench_util.hpp"

int main() {
  using namespace axc;
  using arith::Mul2x2Kind;
  bench::banner("Fig. 5", "2x2 accurate and approximate multipliers");

  for (const Mul2x2Kind kind : {Mul2x2Kind::SoA, Mul2x2Kind::Ours}) {
    std::cout << "\n" << arith::mul2x2_name(kind)
              << " truth table (rows = A, cols = B):\n";
    Table truth({"AxB", "0", "1", "2", "3"});
    for (unsigned a = 0; a <= 3; ++a) {
      std::vector<std::string> cells = {std::to_string(a)};
      for (unsigned b = 0; b <= 3; ++b) {
        const unsigned p = arith::mul2x2(kind, a, b);
        std::string cell = std::to_string(p);
        if (p != a * b) cell += "!";  // error case marker
        cells.push_back(std::move(cell));
      }
      truth.add_row(std::move(cells));
    }
    truth.print(std::cout);
  }

  std::cout << "\nCharacterization (ours vs paper):\n";
  Table table({"Design", "Area [GE] (ours vs paper)",
               "Power [nW] (ours vs paper)", "#Errors (ours/paper)",
               "Max err (ours/paper)"});
  const auto row = [&](Mul2x2Kind kind, bool cfg) {
    const auto ours = logic::characterize_mul2x2(kind, cfg);
    const auto paper = arith::paper_mul2x2_data(kind, cfg);
    const auto int_or_dash = [](int v) {
      return v < 0 ? std::string("-") : std::to_string(v);
    };
    table.add_row(
        {ours.name, bench::vs_paper(paper.area_ge, ours.area_ge),
         bench::vs_paper(paper.power_nw, ours.power_nw, 0),
         (cfg ? "-" : std::to_string(ours.error_cases)) + "/" +
             int_or_dash(paper.error_cases),
         (cfg ? "-" : std::to_string(ours.max_error)) + "/" +
             int_or_dash(paper.max_error)});
  };
  row(Mul2x2Kind::Accurate, false);
  row(Mul2x2Kind::SoA, false);
  row(Mul2x2Kind::SoA, true);
  row(Mul2x2Kind::Ours, false);
  row(Mul2x2Kind::Ours, true);
  table.print(std::cout);

  std::cout << "\nPaper's comparison points reproduced: ApxMul_SoA has 1\n"
               "error case of magnitude 2; ApxMul_Our trades that for 3\n"
               "cases of magnitude 1; CfgMul_SoA's correction adder pushes\n"
               "it above the accurate multiplier while CfgMul_Our's LSB\n"
               "fixup stays below it.\n";
  return 0;
}
