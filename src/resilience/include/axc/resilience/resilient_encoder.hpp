/// \file resilient_encoder.hpp
/// End-to-end closed loop: the video encoder substrate driven through the
/// contract -> monitor -> controller chain, optionally under a transient
/// fault campaign.
///
/// Per frame: encode with the controller's active SAD rung (wrapped by a
/// FaultySad while the fault window is open), measure delivered quality
/// (frame SSIM for the end-to-end channel, plus an arithmetic integrity
/// spot-check of the active unit against the same rung's designed
/// behavior, which isolates fault-induced deviation from designed
/// approximation), feed the QualityMonitor, and let the
/// AdaptiveController escalate or de-escalate before the next frame. The
/// open-loop variant (encode_pinned) runs the identical pipeline with the
/// rung fixed and the contract only measured — the "unmonitored encoder"
/// baseline the integration tests compare against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "axc/resilience/controller.hpp"
#include "axc/resilience/fault.hpp"
#include "axc/video/encoder.hpp"

namespace axc::resilience {

/// A fault campaign over part of a sequence: frames in
/// [first_frame, last_frame) are encoded through a FaultySad with \p spec.
struct FaultWindow {
  FaultSpec spec;
  std::size_t first_frame = 0;
  std::size_t last_frame = static_cast<std::size_t>(-1);

  bool active(std::size_t frame) const {
    return spec.bit_flip_probability > 0.0 && frame >= first_frame &&
           frame < last_frame;
  }
};

/// Per-frame record of the control loop.
struct FrameTrace {
  std::size_t frame = 0;          ///< frame index within the sequence
  std::size_t level = 0;          ///< ladder rung used for this frame
  std::string rung_name;
  double ssim = 1.0;              ///< reconstruction vs source
  std::uint64_t bits = 0;
  std::uint64_t faults_injected = 0;  ///< bits flipped inside this frame
  bool contract_ok = true;        ///< verdict after recording this frame
  ControlAction action = ControlAction::Hold;  ///< decision taken after
};

/// Whole-run outputs.
struct ResilientEncodeStats {
  video::EncodeStats totals;
  std::vector<FrameTrace> trace;  ///< one entry per inter frame
  std::size_t escalations = 0;
  std::size_t deescalations = 0;
  std::size_t frames_in_violation = 0;
  std::size_t final_level = 0;
  std::size_t peak_level = 0;
  double min_ssim = 1.0;
  double mean_ssim = 1.0;
};

/// Encoder with the resilience loop wrapped around it.
class ResilientEncoder {
 public:
  ResilientEncoder(const video::EncoderConfig& config, AccuracyLadder ladder,
                   const QualityContract& contract,
                   const ControllerPolicy& policy = {});

  /// Closed loop: the AdaptiveController picks the rung frame by frame.
  ResilientEncodeStats encode(const video::Sequence& sequence,
                              const FaultWindow& faults = {}) const;

  /// Open loop: rung \p level for every frame; the contract is measured
  /// (trace/violation counts are filled) but never acted on.
  ResilientEncodeStats encode_pinned(const video::Sequence& sequence,
                                     std::size_t level,
                                     const FaultWindow& faults = {}) const;

  const video::EncoderConfig& config() const { return config_; }
  const AccuracyLadder& ladder() const { return ladder_; }

 private:
  ResilientEncodeStats run(const video::Sequence& sequence,
                           const FaultWindow& faults,
                           AdaptiveController* controller,
                           std::size_t pinned_level) const;

  video::EncoderConfig config_;
  AccuracyLadder ladder_;
  QualityContract contract_;
  ControllerPolicy policy_;
};

}  // namespace axc::resilience
