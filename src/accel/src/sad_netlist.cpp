#include "axc/accel/sad_netlist.hpp"

#include <algorithm>
#include <bit>

#include "axc/common/require.hpp"
#include "axc/common/rng.hpp"
#include "axc/logic/adder_netlists.hpp"
#include "axc/logic/bitsliced.hpp"
#include "axc/logic/characterize.hpp"
#include "axc/logic/power.hpp"
#include "axc/obs/obs.hpp"

namespace axc::accel {

using logic::CellType;
using logic::Netlist;
using logic::NetId;

namespace {

constexpr unsigned kPixelBits = 8;

std::vector<arith::FullAdderKind> cells_for(const SadConfig& config,
                                            unsigned width) {
  std::vector<arith::FullAdderKind> cells(width,
                                          arith::FullAdderKind::Accurate);
  const unsigned k = std::min(config.approx_lsbs, width);
  std::fill(cells.begin(), cells.begin() + k, config.cell);
  return cells;
}

/// |a - b| stage: two ripple subtractors and a borrow-driven mux, exactly
/// the structure the behavioural arith::abs_diff_via models.
std::vector<NetId> add_abs_diff(Netlist& nl, const SadConfig& config,
                                std::span<const NetId> a,
                                std::span<const NetId> b) {
  const auto cells = cells_for(config, kPixelBits);
  const NetId one_a = nl.add_const(true);
  std::vector<NetId> not_b(kPixelBits);
  std::vector<NetId> not_a(kPixelBits);
  for (unsigned i = 0; i < kPixelBits; ++i) {
    not_b[i] = nl.add_gate(CellType::Inv, b[i]);
    not_a[i] = nl.add_gate(CellType::Inv, a[i]);
  }
  const std::vector<NetId> d1 =
      logic::add_ripple_adder(nl, a, not_b, one_a, cells);
  const NetId one_b = nl.add_const(true);
  const std::vector<NetId> d2 =
      logic::add_ripple_adder(nl, b, not_a, one_b, cells);
  const NetId no_borrow = d1[kPixelBits];  // carry-out of a - b
  std::vector<NetId> out(kPixelBits);
  for (unsigned i = 0; i < kPixelBits; ++i) {
    // Mux2(sel, x, y) = sel ? y : x — select d1 when no borrow.
    out[i] = nl.add_gate(CellType::Mux2, no_borrow, d2[i], d1[i]);
  }
  return out;
}

}  // namespace

Netlist sad_netlist(const SadConfig& config) {
  require(config.block_pixels >= 2 && config.block_pixels <= 4096 &&
              std::has_single_bit(config.block_pixels),
          "sad_netlist: block_pixels must be a power of two in [2, 4096]");
  Netlist nl(config.name());

  std::vector<std::vector<NetId>> a(config.block_pixels);
  std::vector<std::vector<NetId>> b(config.block_pixels);
  for (unsigned p = 0; p < config.block_pixels; ++p) {
    a[p].resize(kPixelBits);
    for (unsigned i = 0; i < kPixelBits; ++i) {
      a[p][i] = nl.add_input("a" + std::to_string(p) + "_" +
                             std::to_string(i));
    }
  }
  for (unsigned p = 0; p < config.block_pixels; ++p) {
    b[p].resize(kPixelBits);
    for (unsigned i = 0; i < kPixelBits; ++i) {
      b[p][i] = nl.add_input("b" + std::to_string(p) + "_" +
                             std::to_string(i));
    }
  }

  std::vector<std::vector<NetId>> values(config.block_pixels);
  for (unsigned p = 0; p < config.block_pixels; ++p) {
    values[p] = add_abs_diff(nl, config, a[p], b[p]);
  }

  unsigned width = kPixelBits;
  while (values.size() > 1) {
    const auto cells = cells_for(config, width);
    std::vector<std::vector<NetId>> next(values.size() / 2);
    for (std::size_t i = 0; i < next.size(); ++i) {
      const NetId zero = nl.add_const(false);
      next[i] = logic::add_ripple_adder(nl, values[2 * i], values[2 * i + 1],
                                        zero, cells);
    }
    values = std::move(next);
    ++width;
  }
  for (std::size_t i = 0; i < values.front().size(); ++i) {
    nl.mark_output(values.front()[i], "sad" + std::to_string(i));
  }
  return nl;
}

SadHardwareReport characterize_sad(const SadConfig& config,
                                   std::uint64_t vectors,
                                   std::uint64_t seed) {
  const Netlist nl = sad_netlist(config);
  // Memoized: identical structure + stimulus parameters reuse the
  // simulated power instead of re-walking the gate list (thread-safe;
  // shared with logic::characterize via the same cache, and keyed with
  // the same mix_key combiner so every key in that cache is mixed alike).
  std::uint64_t key =
      logic::detail::mix_key(nl.structural_hash(), std::uint64_t{0x5ADC4A5E});
  key = logic::detail::mix_key(key, vectors);
  key = logic::detail::mix_key(key, seed);
  const std::array<double, 3> record = logic::detail::cache_numeric_record(
      key, [&nl, vectors, seed]() -> std::array<double, 3> {
        // Packed stimulus: one 64-bit word per primary input carries 64
        // random lanes, so each pass over the (large) SAD gate list
        // advances 64 vectors.
        logic::BitslicedSimulator sim(nl);
        axc::Rng rng(seed);
        const unsigned lane_width = static_cast<unsigned>(
            std::min<std::uint64_t>(logic::BitslicedSimulator::kLanes,
                                    std::max<std::uint64_t>(1, vectors / 2)));
        std::vector<std::uint64_t> stimulus(nl.inputs().size());
        std::uint64_t remaining = vectors;
        while (remaining > 0) {
          const unsigned lanes = static_cast<unsigned>(
              std::min<std::uint64_t>(lane_width, remaining));
          for (auto& word : stimulus) word = rng();
          sim.apply_lanes(stimulus, lanes);
          remaining -= lanes;
        }
        const double power_nw =
            logic::calibrated_power_model().estimate(sim).total_nw;
        return {nl.area_ge(), power_nw,
                static_cast<double>(nl.gate_count())};
      });

  SadHardwareReport report;
  report.area_ge = record[0];
  report.power_nw = record[1];
  report.gate_count = static_cast<std::size_t>(record[2]);
  return report;
}

NetlistSad::NetlistSad(const SadConfig& config)
    : NetlistSad(config, logic::default_sim_engine()) {}

NetlistSad::NetlistSad(const SadConfig& config, logic::SimEngine engine)
    : config_(config),
      netlist_(sad_netlist(config)),
      sim_(netlist_, engine) {}

void NetlistSad::apply_chunk(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> candidates,
                             unsigned lanes,
                             std::span<std::uint64_t> out) const {
  const std::size_t bp = config_.block_pixels;
  in_words_.resize(netlist_.inputs().size());
  std::uint64_t* words_a = in_words_.data();
  std::uint64_t* words_b = words_a + bp * kPixelBits;
  // Current block broadcast: every lane compares against the same A.
  for (std::size_t p = 0; p < bp; ++p) {
    const unsigned value = a[p];
    for (unsigned bit = 0; bit < kPixelBits; ++bit) {
      words_a[p * kPixelBits + bit] =
          (value >> bit & 1u) ? ~std::uint64_t{0} : 0;
    }
  }
  // Candidate blocks transposed into lanes: bit k of B-input (p, bit) is
  // candidate k's pixel bit.
  std::fill(words_b, words_b + bp * kPixelBits, 0);
  for (unsigned k = 0; k < lanes; ++k) {
    const std::uint8_t* candidate = candidates.data() + k * bp;
    for (std::size_t p = 0; p < bp; ++p) {
      const unsigned value = candidate[p];
      for (unsigned bit = 0; bit < kPixelBits; ++bit) {
        words_b[p * kPixelBits + bit] |=
            static_cast<std::uint64_t>(value >> bit & 1u) << k;
      }
    }
  }
  sim_.apply_lanes(in_words_, lanes);
  for (unsigned k = 0; k < lanes; ++k) out[k] = sim_.lane_output(k);
}

std::uint64_t NetlistSad::sad(std::span<const std::uint8_t> a,
                              std::span<const std::uint8_t> b) const {
  AXC_REQUIRE(a.size() == config_.block_pixels && b.size() == a.size(),
              "NetlistSad::sad: block size mismatch");
  std::uint64_t out = 0;
  apply_chunk(a, b, 1, {&out, 1});
  return out;
}

void NetlistSad::sad_batch(std::span<const std::uint8_t> a,
                           std::span<const std::uint8_t> candidates,
                           std::span<std::uint64_t> out) const {
  const std::size_t bp = config_.block_pixels;
  AXC_REQUIRE(a.size() == bp, "NetlistSad::sad_batch: current block size "
                              "mismatch");
  AXC_REQUIRE(candidates.size() == out.size() * bp,
              "NetlistSad::sad_batch: candidates must hold exactly one "
              "block per output slot");
  detail::count_sad_batch(out.size());
  // Lane occupancy of the packed passes this batch breaks into; full-ish
  // buckets mean the 64-lane engine is actually being fed 64-wide.
  static obs::Histogram& occupancy =
      obs::histogram("accel.sad_batch.lane_occupancy");
  constexpr unsigned kLanes = logic::BitslicedSimulator::kLanes;
  std::size_t done = 0;
  while (done < out.size()) {
    const unsigned lanes = static_cast<unsigned>(
        std::min<std::size_t>(kLanes, out.size() - done));
    occupancy.record(lanes);
    apply_chunk(a, candidates.subspan(done * bp, lanes * bp), lanes,
                out.subspan(done, lanes));
    done += lanes;
  }
}

std::string NetlistSad::name() const {
  return "Netlist<" + config_.name() + ">";
}

bool NetlistSad::is_exact() const {
  return config_.cell == arith::FullAdderKind::Accurate ||
         config_.approx_lsbs == 0;
}

}  // namespace axc::accel
