#include "axc/error/evaluate.hpp"

#include <gtest/gtest.h>

#include "axc/arith/gear.hpp"
#include "axc/logic/mul_netlists.hpp"
#include "axc/logic/simulator.hpp"

namespace axc::error {
namespace {

using arith::ExactAdder;
using arith::FullAdderKind;
using arith::GeArAdder;
using arith::RippleAdder;

TEST(EvaluateAdder, ExactAdderIsErrorFree) {
  const ExactAdder adder(8);
  const ErrorStats stats = evaluate_adder(adder);
  EXPECT_TRUE(stats.exhaustive);
  EXPECT_EQ(stats.samples, 65536u);
  EXPECT_EQ(stats.error_count, 0u);
}

TEST(EvaluateAdder, ExhaustiveVsSampledAgree) {
  // For a 10-bit GeAr adder (20 input bits, exhaustive) vs a forced
  // Monte-Carlo run: the sampled error rate must approximate the truth.
  const GeArAdder adder({10, 2, 2});
  EvalOptions exhaustive;
  exhaustive.max_exhaustive_bits = 20;
  const ErrorStats truth = evaluate_adder(adder, exhaustive);
  ASSERT_TRUE(truth.exhaustive);

  EvalOptions sampled;
  sampled.max_exhaustive_bits = 4;  // force sampling
  sampled.samples = 1u << 18;
  const ErrorStats mc = evaluate_adder(adder, sampled);
  ASSERT_FALSE(mc.exhaustive);
  EXPECT_NEAR(mc.error_rate, truth.error_rate, 0.01);
  EXPECT_NEAR(mc.mean_error_distance, truth.mean_error_distance,
              0.05 * truth.mean_error_distance + 0.5);
}

TEST(EvaluateAdder, SamplingIsDeterministicPerSeed) {
  const GeArAdder adder({16, 4, 4});
  EvalOptions opts;
  opts.max_exhaustive_bits = 8;
  opts.samples = 10000;
  const ErrorStats a = evaluate_adder(adder, opts);
  const ErrorStats b = evaluate_adder(adder, opts);
  EXPECT_EQ(a.error_count, b.error_count);
  EXPECT_DOUBLE_EQ(a.mean_error_distance, b.mean_error_distance);
  opts.seed ^= 0xDEAD;
  const ErrorStats c = evaluate_adder(adder, opts);
  EXPECT_NE(a.error_count, c.error_count);  // different stream
}

TEST(EvaluateAdder, RippleApxErrorRateGrowsWithLsbs) {
  double previous = -1.0;
  for (unsigned lsbs : {0u, 2u, 4u, 8u}) {
    const RippleAdder adder =
        RippleAdder::lsb_approximated(8, FullAdderKind::Apx5, lsbs);
    const ErrorStats stats = evaluate_adder(adder);
    EXPECT_GE(stats.error_rate, previous);
    previous = stats.error_rate;
  }
  EXPECT_GT(previous, 0.5);  // fully-wired adder is mostly wrong
}

TEST(EvaluateMultiplier, ExactIsErrorFree) {
  arith::MultiplierConfig config;
  config.width = 8;
  const arith::ApproxMultiplier mul(config);
  const ErrorStats stats = evaluate_multiplier(mul);
  EXPECT_TRUE(stats.exhaustive);
  EXPECT_EQ(stats.error_count, 0u);
}

TEST(EvaluateMultiplier, ApproxBlocksGiveBoundedNmed) {
  arith::MultiplierConfig config;
  config.width = 8;
  config.block = arith::Mul2x2Kind::Ours;
  const arith::ApproxMultiplier mul(config);
  const ErrorStats stats = evaluate_multiplier(mul);
  EXPECT_GT(stats.error_rate, 0.0);
  // Block errors at the high half-products are scaled by their position
  // weight, so the damage is a few percent of the output range, not less.
  EXPECT_LT(stats.normalized_med, 0.05);
}

TEST(EvaluateNetlist, AccurateWallaceIsErrorFree) {
  const logic::Netlist nl =
      logic::wallace_netlist(4, FullAdderKind::Accurate, 0);
  const std::uint64_t ceiling = 15u * 15u;
  const ErrorStats stats = evaluate_netlist(nl, ceiling, [](std::uint64_t w) {
    return (w & 0xF) * ((w >> 4) & 0xF);
  });
  EXPECT_TRUE(stats.exhaustive);
  EXPECT_EQ(stats.samples, 256u);
  EXPECT_EQ(stats.error_count, 0u);
}

TEST(EvaluateNetlist, MatchesEvaluateFunctionBitForBit) {
  // The gate-level evaluator against the same netlist driven one word at a
  // time through the scalar Simulator: identical input enumeration and
  // accumulation order, so every statistic must match exactly — including
  // the floating-point ones.
  const logic::Netlist nl = logic::wallace_netlist(4, FullAdderKind::Apx3, 3);
  const std::uint64_t ceiling = 15u * 15u;
  const auto exact = [](std::uint64_t w) {
    return (w & 0xF) * ((w >> 4) & 0xF);
  };

  logic::Simulator scalar(nl);
  const ErrorStats via_function = evaluate_function(
      8, ceiling, [&](std::uint64_t w) { return scalar.apply_word(w); },
      exact);
  const ErrorStats via_netlist = evaluate_netlist(nl, ceiling, exact);

  ASSERT_TRUE(via_netlist.exhaustive);
  EXPECT_EQ(via_netlist.samples, via_function.samples);
  EXPECT_EQ(via_netlist.error_count, via_function.error_count);
  EXPECT_EQ(via_netlist.max_error, via_function.max_error);
  EXPECT_EQ(via_netlist.error_rate, via_function.error_rate);
  EXPECT_EQ(via_netlist.mean_error_distance,
            via_function.mean_error_distance);
  EXPECT_EQ(via_netlist.normalized_med, via_function.normalized_med);
}

TEST(EvaluateNetlist, SampledPathIsThreadCountInvariant) {
  // 16 input bits with a forced 8-bit exhaustive ceiling → Monte-Carlo.
  // Per-chunk seeds + chunk-order merge: 1 worker and 4 workers must agree
  // bit for bit (the same guarantee test_parallel_eval.cpp pins for
  // evaluate_function).
  const logic::Netlist nl = logic::wallace_netlist(8, FullAdderKind::Apx3, 6);
  const std::uint64_t ceiling = 255u * 255u;
  const auto exact = [](std::uint64_t w) {
    return (w & 0xFF) * ((w >> 8) & 0xFF);
  };
  EvalOptions opts;
  opts.max_exhaustive_bits = 8;
  opts.samples = 1u << 16;

  opts.threads = 1;
  const ErrorStats serial = evaluate_netlist(nl, ceiling, exact, opts);
  opts.threads = 4;
  const ErrorStats parallel = evaluate_netlist(nl, ceiling, exact, opts);

  ASSERT_FALSE(serial.exhaustive);
  EXPECT_GT(serial.error_count, 0u);
  EXPECT_EQ(serial.error_count, parallel.error_count);
  EXPECT_EQ(serial.max_error, parallel.max_error);
  EXPECT_EQ(serial.mean_error_distance, parallel.mean_error_distance);
  EXPECT_EQ(serial.normalized_med, parallel.normalized_med);
}

TEST(EvaluateNetlist, ShapeValidation) {
  // A netlist with no primary outputs has no approximate value to score.
  const logic::Netlist no_outputs = logic::Netlist::from_parts(
      "no-outputs", {logic::CellType::Input}, {}, {0}, {});
  EXPECT_THROW(
      evaluate_netlist(no_outputs, 1, [](std::uint64_t) { return 0u; }),
      std::invalid_argument);
}

TEST(EvaluateFunction, InputBitsValidation) {
  const auto identity = [](std::uint64_t w) { return w; };
  EXPECT_THROW(evaluate_function(0, 1, identity, identity),
               std::invalid_argument);
  EXPECT_THROW(evaluate_function(64, 1, identity, identity),
               std::invalid_argument);
}

}  // namespace
}  // namespace axc::error
