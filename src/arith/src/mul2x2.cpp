#include "axc/arith/mul2x2.hpp"

#include "axc/common/require.hpp"

namespace axc::arith {

unsigned mul2x2(Mul2x2Kind kind, unsigned a, unsigned b) {
  require(a <= 3 && b <= 3, "mul2x2: operands must be 2-bit values");
  const unsigned exact = a * b;
  switch (kind) {
    case Mul2x2Kind::Accurate:
      return exact;
    case Mul2x2Kind::SoA: {
      // Kulkarni block: P2 = a1b1, P1 = a1b0 | a0b1, P0 = a0b0. Only 3x3
      // deviates: 0b111 = 7 instead of 9 (the 4th output bit does not
      // exist and the middle column loses its carry).
      const unsigned a0 = a & 1u, a1 = (a >> 1) & 1u;
      const unsigned b0 = b & 1u, b1 = (b >> 1) & 1u;
      return (a0 & b0) | (((a1 & b0) | (a0 & b1)) << 1) | ((a1 & b1) << 2);
    }
    case Mul2x2Kind::Ours: {
      // P0 is wired to P3 of the exact product; P3..P1 stay exact. Only
      // (1,1), (1,3) and (3,1) lose their LSB -> three error cases, each
      // off by exactly 1; (3,3) keeps P3 = P0 = 1 and stays 9.
      const unsigned p3 = (exact >> 3) & 1u;
      return (exact & 0xEu) | p3;
    }
  }
  require(false, "mul2x2: unknown kind");
  return 0;
}

unsigned cfg_mul2x2(Mul2x2Kind kind, unsigned a, unsigned b,
                    bool exact_mode) {
  if (!exact_mode) return mul2x2(kind, a, b);
  switch (kind) {
    case Mul2x2Kind::Accurate:
      return mul2x2(Mul2x2Kind::Accurate, a, b);
    case Mul2x2Kind::SoA: {
      // Correction adder: when both operands are 3 the approximate product
      // (7) is 2 short of 9, so a detected 3x3 adds 0b010.
      const unsigned approx = mul2x2(Mul2x2Kind::SoA, a, b);
      const bool both_three = (a == 3) && (b == 3);
      return approx + (both_three ? 2u : 0u);
    }
    case Mul2x2Kind::Ours: {
      // LSB fixup: the exact LSB is a0 & b0; restoring it corrects all
      // three error cases (each was off by exactly that bit).
      const unsigned approx = mul2x2(Mul2x2Kind::Ours, a, b);
      return (approx & 0xEu) | (a & b & 1u);
    }
  }
  require(false, "cfg_mul2x2: unknown kind");
  return 0;
}

std::string_view mul2x2_name(Mul2x2Kind kind) {
  switch (kind) {
    case Mul2x2Kind::Accurate:
      return "AccMul";
    case Mul2x2Kind::SoA:
      return "ApxMul_SoA";
    case Mul2x2Kind::Ours:
      return "ApxMul_Our";
  }
  return "?";
}

PaperMul2x2Data paper_mul2x2_data(Mul2x2Kind kind, bool configurable) {
  // Bottom table of Fig. 5.
  switch (kind) {
    case Mul2x2Kind::Accurate:
      return {6.880, 542.9, 0, 0};
    case Mul2x2Kind::SoA:
      return configurable ? PaperMul2x2Data{7.232, 525.0, -1, -1}
                          : PaperMul2x2Data{3.704, 363.0, 1, 2};
    case Mul2x2Kind::Ours:
      return configurable ? PaperMul2x2Data{6.350, 379.0, -1, -1}
                          : PaperMul2x2Data{4.939, 262.0, 3, 1};
  }
  return {};
}

}  // namespace axc::arith
