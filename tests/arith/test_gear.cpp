#include "axc/arith/gear.hpp"

#include <gtest/gtest.h>

#include <set>

#include "axc/common/bits.hpp"
#include "axc/common/rng.hpp"

namespace axc::arith {
namespace {

TEST(GeArConfig, GeometryFollowsPaperFormulas) {
  // The paper's illustration: N=12, R=4, P=4 -> L=8, k=((12-8)/4)+1=2.
  const GeArConfig config{12, 4, 4};
  ASSERT_TRUE(config.is_valid());
  EXPECT_EQ(config.l(), 8u);
  EXPECT_EQ(config.num_subadders(), 2u);
  EXPECT_EQ(config.name(), "GeAr(N=12,R=4,P=4)");
}

TEST(GeArConfig, ValidityRules) {
  EXPECT_TRUE((GeArConfig{8, 2, 2}).is_valid());
  EXPECT_TRUE((GeArConfig{8, 3, 2}).is_valid());   // (8-5) % 3 == 0
  EXPECT_FALSE((GeArConfig{8, 3, 3}).is_valid());  // (8-6) % 3 != 0
  EXPECT_FALSE((GeArConfig{8, 0, 4}).is_valid());  // R >= 1
  EXPECT_FALSE((GeArConfig{8, 4, 8}).is_valid());  // L > N
  EXPECT_TRUE((GeArConfig{8, 4, 4}).is_valid());   // L == N: exact
  EXPECT_TRUE((GeArConfig{8, 4, 4}).is_exact());
}

TEST(GeArConfig, Enumerate11BitSpace) {
  // The Table IV space: all valid approximate (R, P) pairs with P >= 1 for
  // N = 11. Derived by hand: R=1 -> P in 1..9; R=2 -> P in {1,3,5,7};
  // R=3 -> {2,5}; R=4 -> {3}; R=5 -> {1}. Total 17.
  const auto configs = enumerate_gear_configs(11);
  EXPECT_EQ(configs.size(), 17u);
  std::set<std::pair<unsigned, unsigned>> rp;
  for (const auto& c : configs) {
    EXPECT_TRUE(c.is_valid());
    EXPECT_FALSE(c.is_exact());
    EXPECT_EQ(c.n, 11u);
    rp.insert({c.r, c.p});
  }
  EXPECT_EQ(rp.size(), configs.size());  // no duplicates
  EXPECT_TRUE(rp.count({3, 5}));         // the paper's selected config
  EXPECT_TRUE(rp.count({1, 9}));         // the max-accuracy config
}

TEST(GeArConfig, EnumerateIncludesExactWhenAsked) {
  const auto with_exact = enumerate_gear_configs(11, 1, true);
  const auto without = enumerate_gear_configs(11, 1, false);
  EXPECT_GT(with_exact.size(), without.size());
  bool found_exact = false;
  for (const auto& c : with_exact) found_exact |= c.is_exact();
  EXPECT_TRUE(found_exact);
}

TEST(GeArAdder, PaperIllustrationExample) {
  // Fig. 3 example shape: the approximate sum drops the carry crossing the
  // sub-adder boundary when the prediction window cannot see it.
  const GeArAdder adder({12, 4, 4});
  // Case with no boundary-crossing carry: exact.
  EXPECT_EQ(adder.add(0x0F0, 0x00F, 0), 0x0FFull);
  // Both operands max: carries everywhere, still exact because every
  // prediction window sees the generating bits.
  EXPECT_EQ(adder.add(0xFFF, 0xFFF, 0), 0xFFFull + 0xFFFull);
}

TEST(GeArAdder, KnownErrorCase) {
  // N=8, R=2, P=2 (L=4, k=3). Operands chosen so a carry is generated in
  // sub-adder 1's low bits and the second window's P bits all propagate:
  // a = 0b00001111, b = 0b00110001: exact sum = 0x40.
  // Sub-adder 2 covers bits 2..5 = a:0b0011, b:0b1100 -> no carry seen from
  // bits 0..1 (a=11, b=01 generates one), P bits (2,3) propagate => error.
  const GeArAdder adder({8, 2, 2});
  const std::uint64_t a = 0x0F, b = 0x31;
  EXPECT_TRUE(adder.error_detected(a, b));
  EXPECT_NE(adder.add(a, b, 0), a + b);
}

// Exhaustive ground truth for small widths: the approximate result must
// equal the reference model computed directly from the definition.
class GeArExhaustive : public ::testing::TestWithParam<GeArConfig> {};

std::uint64_t reference_gear(const GeArConfig& c, std::uint64_t a,
                             std::uint64_t b) {
  const unsigned l = c.l();
  std::uint64_t sum = 0;
  for (unsigned i = 0; i < c.num_subadders(); ++i) {
    const unsigned start = i * c.r;
    const std::uint64_t mask = (std::uint64_t{1} << l) - 1;
    const std::uint64_t window =
        ((a >> start) & mask) + ((b >> start) & mask);
    if (i == 0) {
      sum |= window & mask;
    } else {
      for (unsigned bit = c.p; bit < l; ++bit) {
        sum |= ((window >> bit) & 1u) << (start + bit);
      }
    }
    if (i == c.num_subadders() - 1) sum |= ((window >> l) & 1u) << c.n;
  }
  return sum;
}

TEST_P(GeArExhaustive, MatchesDefinitionForAllInputs) {
  const GeArConfig config = GetParam();
  const GeArAdder adder(config);
  const std::uint64_t limit = std::uint64_t{1} << config.n;
  for (std::uint64_t a = 0; a < limit; ++a) {
    for (std::uint64_t b = 0; b < limit; ++b) {
      ASSERT_EQ(adder.add(a, b, 0), reference_gear(config, a, b))
          << config.name() << " a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallConfigs, GeArExhaustive,
    ::testing::Values(GeArConfig{6, 1, 1}, GeArConfig{6, 2, 2},
                      GeArConfig{6, 1, 3}, GeArConfig{8, 2, 2},
                      GeArConfig{8, 4, 4}, GeArConfig{8, 2, 4},
                      GeArConfig{8, 1, 1}, GeArConfig{7, 3, 1}),
    [](const auto& info) {
      const auto& c = info.param;
      return "N" + std::to_string(c.n) + "R" + std::to_string(c.r) + "P" +
             std::to_string(c.p);
    });

// Full error correction (k-1 iterations) must be bit-exact everywhere.
class GeArCorrection : public ::testing::TestWithParam<GeArConfig> {};

TEST_P(GeArCorrection, FullCorrectionIsExact) {
  const GeArConfig config = GetParam();
  const GeArAdder corrected(config, config.num_subadders() - 1);
  EXPECT_TRUE(corrected.is_exact());
  const std::uint64_t limit = std::uint64_t{1} << config.n;
  for (std::uint64_t a = 0; a < limit; ++a) {
    for (std::uint64_t b = 0; b < limit; ++b) {
      ASSERT_EQ(corrected.add(a, b, 0), a + b)
          << config.name() << " a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallConfigs, GeArCorrection,
    ::testing::Values(GeArConfig{6, 1, 1}, GeArConfig{8, 2, 2},
                      GeArConfig{8, 1, 1}, GeArConfig{8, 2, 4},
                      GeArConfig{10, 2, 2}),
    [](const auto& info) {
      const auto& c = info.param;
      return "N" + std::to_string(c.n) + "R" + std::to_string(c.r) + "P" +
             std::to_string(c.p);
    });

TEST(GeArAdder, PartialCorrectionMonotonicallyImproves) {
  const GeArConfig config{16, 2, 2};
  Rng rng(21);
  double previous_rate = 1.1;
  for (unsigned iters = 0; iters < config.num_subadders(); ++iters) {
    const GeArAdder adder(config, iters);
    int errors = 0;
    Rng local(21);
    constexpr int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i) {
      const std::uint64_t a = local.bits(16);
      const std::uint64_t b = local.bits(16);
      errors += adder.add(a, b, 0) != a + b;
    }
    const double rate = static_cast<double>(errors) / kSamples;
    EXPECT_LE(rate, previous_rate) << "iters " << iters;
    previous_rate = rate;
  }
  // And the final iteration count gives zero errors.
  EXPECT_EQ(previous_rate, 0.0);
}

TEST(GeArAdder, ErrorDetectedIffResultWrong) {
  // Detection must be sound & complete: flag raised exactly when the
  // uncorrected output differs from the exact sum.
  const GeArAdder adder({8, 2, 2});
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      const bool wrong = adder.add(a, b, 0) != a + b;
      ASSERT_EQ(adder.error_detected(a, b), wrong) << a << " " << b;
    }
  }
}

TEST(GeArAdder, CarryInSupported) {
  const GeArAdder adder({8, 4, 4});  // exact config
  EXPECT_EQ(adder.add(10, 20, 1), 31u);
}

TEST(GeArAdder, InvalidConfigRejected) {
  EXPECT_THROW(GeArAdder({8, 3, 3}), std::invalid_argument);
}

TEST(GeArAdder, NameEncodesConfigAndCorrection) {
  EXPECT_EQ(GeArAdder({8, 2, 2}).name(), "GeAr(N=8,R=2,P=2)");
  EXPECT_EQ(GeArAdder({8, 2, 2}, 1).name(), "GeAr(N=8,R=2,P=2)+EDC1");
}

// --- Correction semantics (CEC, Sec. 6.1) ------------------------------

TEST(GeArCorrectionSemantics, FullCorrectionExhaustiveSmallWidthsWithCarry) {
  // k-1 correction passes must be bit-exact for every operand pair AND
  // both carry-in values, across every valid config at small widths.
  for (const unsigned n : {4u, 5u, 6u, 7u, 8u}) {
    for (const GeArConfig& config : enumerate_gear_configs(n)) {
      const GeArAdder corrected(config, config.num_subadders() - 1);
      ASSERT_TRUE(corrected.is_exact()) << config.name();
      const std::uint64_t limit = std::uint64_t{1} << n;
      for (std::uint64_t a = 0; a < limit; ++a) {
        for (std::uint64_t b = 0; b < limit; ++b) {
          ASSERT_EQ(corrected.add(a, b, 0), a + b) << config.name();
          ASSERT_EQ(corrected.add(a, b, 1), a + b + 1) << config.name();
        }
      }
    }
  }
}

TEST(GeArCorrectionSemantics, FullCorrectionRandomizedLargeWidths) {
  // The exhaustive sweep cannot reach wide operands; randomized coverage
  // at N=32 and the maximum N=63 guards the shift/mask plumbing there.
  for (const GeArConfig config : {GeArConfig{32, 4, 4}, GeArConfig{63, 5, 3},
                                  GeArConfig{48, 2, 2}}) {
    ASSERT_TRUE(config.is_valid()) << config.name();
    const GeArAdder corrected(config, config.num_subadders() - 1);
    EXPECT_TRUE(corrected.is_exact()) << config.name();
    const GeArAdder one_short(config, config.num_subadders() - 2);
    EXPECT_FALSE(one_short.is_exact()) << config.name();
    Rng rng(0xC0FFEEu + config.n);
    for (int i = 0; i < 20000; ++i) {
      const std::uint64_t a = rng.bits(config.n);
      const std::uint64_t b = rng.bits(config.n);
      const unsigned cin = static_cast<unsigned>(rng.bits(1));
      ASSERT_EQ(corrected.add(a, b, cin), a + b + cin)
          << config.name() << " a=" << a << " b=" << b << " cin=" << cin;
    }
  }
}

/// Reference for what the EDC hardware observes at sub-adder \p i (1-based):
/// its emitted top-R bits change when the previous window's carry-out is
/// applied to the prediction window.
bool observed_subadder_error(const GeArConfig& c, std::uint64_t a,
                             std::uint64_t b, unsigned i) {
  const unsigned l = c.l();
  const std::uint64_t win =
      bit_field(a, i * c.r, l) + bit_field(b, i * c.r, l);
  const std::uint64_t prev =
      bit_field(a, (i - 1) * c.r, l) + bit_field(b, (i - 1) * c.r, l);
  const std::uint64_t cout_prev = bit_of(prev, l);
  return bit_field(win, c.p, c.r) != bit_field(win + cout_prev, c.p, c.r);
}

TEST(GeArCorrectionSemantics, ErrorFlagsAgreeWithObservedSubAdderErrors) {
  // error_flags()[i-1] must equal the observable fact "sub-adder i's
  // result bits are wrong given its neighbour's carry" — exhaustively for
  // 8-bit configs, randomized at 16 bits.
  for (const GeArConfig& config : enumerate_gear_configs(8)) {
    const GeArAdder adder(config);
    for (std::uint64_t a = 0; a < 256; ++a) {
      for (std::uint64_t b = 0; b < 256; ++b) {
        const std::vector<bool> flags = adder.error_flags(a, b);
        ASSERT_EQ(flags.size(), config.num_subadders() - 1);
        for (unsigned i = 1; i < config.num_subadders(); ++i) {
          ASSERT_EQ(flags[i - 1], observed_subadder_error(config, a, b, i))
              << config.name() << " a=" << a << " b=" << b << " sub " << i;
        }
      }
    }
  }
  const GeArConfig config{16, 2, 2};
  const GeArAdder adder(config);
  Rng rng(404);
  for (int trial = 0; trial < 20000; ++trial) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    const std::vector<bool> flags = adder.error_flags(a, b);
    for (unsigned i = 1; i < config.num_subadders(); ++i) {
      ASSERT_EQ(flags[i - 1], observed_subadder_error(config, a, b, i));
    }
  }
}

TEST(GeArCorrectionSemantics, ErrorDetectedMatchesAnyFlagAndObservedError) {
  const GeArAdder adder({8, 1, 2});
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      const std::vector<bool> flags = adder.error_flags(a, b);
      bool any = false;
      for (const bool f : flags) any = any || f;
      ASSERT_EQ(adder.error_detected(a, b), any);
      ASSERT_EQ(any, adder.add(a, b, 0) != a + b) << a << " " << b;
    }
  }
}

}  // namespace
}  // namespace axc::arith
