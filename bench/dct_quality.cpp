/// Extension experiment: the 4x4 integer-DCT accelerator (the other
/// video-codec datapath next to SAD) under approximate adders —
/// reconstruction quality vs approximation depth per Table III cell.
#include <iostream>

#include "axc/accel/dct.hpp"
#include "axc/common/rng.hpp"
#include "bench_util.hpp"

int main() {
  using namespace axc;
  using accel::Block4x4;
  using accel::Dct4x4;
  using arith::FullAdderKind;
  bench::banner("Extension", "4x4 integer DCT on approximate adders");

  axc::Rng rng(77);
  std::vector<Block4x4> blocks;
  for (int i = 0; i < 400; ++i) {
    Block4x4 block{};
    // Residual-like content: small DC offset + noise, occasionally spiky.
    const int dc = static_cast<int>(rng.below(61)) - 30;
    for (auto& sample : block) {
      sample = std::clamp<int>(
          dc + static_cast<int>(std::lround(rng.normal() * 20.0)), -255, 255);
    }
    blocks.push_back(block);
  }

  Table table({"Datapath", "Recon MSE", "Recon PSNR [dB]",
               "blocks bit-exact"});
  for (const FullAdderKind cell :
       {FullAdderKind::Apx1, FullAdderKind::Apx2, FullAdderKind::Apx3,
        FullAdderKind::Apx4, FullAdderKind::Apx5}) {
    for (const unsigned lsbs : {2u, 4u, 6u}) {
      const Dct4x4 dct(accel::DctConfig{cell, lsbs});
      double mse = 0.0;
      int exact_blocks = 0;
      for (const Block4x4& x : blocks) {
        const Block4x4 rec = Dct4x4::inverse_exact(dct.forward(x));
        double err = 0.0;
        for (int i = 0; i < 16; ++i) {
          const double d = rec[i] - x[i];
          err += d * d;
        }
        mse += err / 16.0;
        exact_blocks += rec == x;
      }
      mse /= static_cast<double>(blocks.size());
      const double psnr =
          mse == 0.0 ? 99.0 : 10.0 * std::log10(510.0 * 510.0 / mse);
      table.add_row({dct.config().name(), fmt(mse, 2), fmt(psnr, 2),
                     std::to_string(exact_blocks) + "/" +
                         std::to_string(blocks.size())});
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::cout << "\nSame pattern as the SAD case study: 2 LSBs nearly free,\n"
               "4 a visible but tolerable loss, 6 substantial — and the\n"
               "cell ordering mirrors Table III's error-case counts.\n";
  return 0;
}
