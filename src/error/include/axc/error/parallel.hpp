/// \file parallel.hpp
/// Deterministic chunked parallel-for used by the evaluation kernels.
///
/// Work over [0, total) is split into fixed-size chunks whose boundaries do
/// NOT depend on the worker count, and per-chunk partial results are
/// reduced in chunk-index order by the caller. Sampled runs additionally
/// derive one RNG sub-seed per chunk (eval_chunk_seed). Together this makes
/// every result bit-identical for 1, 2 or N threads — the property the
/// determinism tests pin down.
#pragma once

#include <cstdint>
#include <functional>

namespace axc::error {

/// Fixed chunk width (inputs per chunk) for parallel evaluation. Small
/// enough that the paper-scale workloads split into many chunks, large
/// enough that per-chunk overhead is noise.
inline constexpr std::uint64_t kEvalChunk = std::uint64_t{1} << 16;

/// Number of chunks covering [0, total).
constexpr std::uint64_t eval_chunk_count(std::uint64_t total) {
  return (total + kEvalChunk - 1) / kEvalChunk;
}

/// The RNG sub-seed of chunk \p chunk for a sampled run seeded with
/// \p seed (golden-ratio stride; Rng's SplitMix64 expansion decorrelates
/// the streams).
constexpr std::uint64_t eval_chunk_seed(std::uint64_t seed,
                                        std::uint64_t chunk) {
  return seed + 0x9e3779b97f4a7c15ULL * (chunk + 1);
}

/// Resolves the worker count: \p requested if nonzero, else the
/// AXC_EVAL_THREADS environment variable if set and positive, else
/// std::thread::hardware_concurrency() (minimum 1).
unsigned resolve_eval_threads(unsigned requested);

/// Runs fn(chunk_index, begin, end) for every \p chunk_size-sized chunk of
/// [0, total) on up to \p threads workers (clamped to the chunk count;
/// <= 1 runs inline). Chunk boundaries depend only on chunk_size, never on
/// the worker count, and fn must only touch state owned by its chunk index
/// — determinism and thread-safety both follow from that. The video
/// encoder uses this with block-row-sized chunks; the error-evaluation
/// kernels use the kEvalChunk overload below.
void parallel_chunks_of(
    std::uint64_t total, std::uint64_t chunk_size, unsigned threads,
    const std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)>&
        fn);

/// parallel_chunks_of with the canonical kEvalChunk chunk size.
void parallel_chunks(
    std::uint64_t total, unsigned threads,
    const std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)>&
        fn);

}  // namespace axc::error
