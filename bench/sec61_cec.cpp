/// Regenerates the Sec. 6.1 result: Consolidated Error Correction — one
/// output-side offset corrector in place of per-adder EDC hardware.
/// Reports (a) the specific-valued error distribution the scheme exploits,
/// (b) accuracy recovered by the consolidated offset, (c) area saved vs
/// per-adder EDC.
#include <iostream>

#include "axc/common/rng.hpp"
#include "axc/core/cec.hpp"
#include "bench_util.hpp"

int main() {
  using namespace axc;
  bench::banner("Sec. 6.1", "Consolidated Error Correction (CEC)");

  const arith::GeArConfig config{12, 2, 2};
  const arith::GeArAdder adder(config);

  // (a) The error-value distribution: only a handful of specific values.
  const auto dist = error::adder_error_distribution(adder);
  std::cout << "\nError distribution of " << config.name()
            << " (signed error = approx - exact):\n";
  Table hist({"error value", "probability"});
  for (const auto& [value, count] : dist.histogram()) {
    hist.add_row({std::to_string(value),
                  fmt_pct(static_cast<double>(count) /
                              static_cast<double>(dist.samples()),
                          3)});
  }
  hist.print(std::cout);
  std::cout << "Distinct error values: " << dist.support().size()
            << " — the \"specific values\" observation of Sec. 6.1.\n";

  // (b) A biased cascade: accumulate 8 approximate additions, where the
  // per-adder errors pile up into a strongly biased output error that a
  // single offset removes.
  axc::Rng rng(33);
  error::ErrorDistribution cascade;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    std::int64_t exact = 0;
    std::uint64_t approx = 0;
    for (int term = 0; term < 8; ++term) {
      const std::uint64_t v = rng.bits(11);
      exact += static_cast<std::int64_t>(v);
      approx = adder.add(approx & 0xFFF, v, 0) & 0xFFF;
    }
    cascade.record(static_cast<std::int64_t>(approx & 0xFFF) -
                   (exact & 0xFFF));
  }
  const core::Cec cec = core::Cec::from_distribution(cascade);
  std::cout << "\n8-addition cascade: mean |error| " << fmt(cec.uncorrected_med(), 3)
            << " -> " << fmt(cec.corrected_med(), 3)
            << " after the consolidated offset (" << cec.correction()
            << ")\n";

  // (b') Flag-driven consolidated correction (the full mechanism of [37]):
  // per-boundary weights summed once at the output recover the exact sum.
  {
    const core::FlagDrivenCec flag_cec(config);
    axc::Rng frng(44);
    int raw_errors = 0, corrected_errors = 0;
    constexpr int kFlagSamples = 200000;
    for (int i = 0; i < kFlagSamples; ++i) {
      const std::uint64_t a = frng.bits(config.n);
      const std::uint64_t b = frng.bits(config.n);
      raw_errors += adder.add(a, b, 0) != a + b;
      corrected_errors += flag_cec.correct(adder, a, b) != a + b;
    }
    std::cout << "\nFlag-driven CEC on " << config.name() << ": error rate "
              << fmt_pct(static_cast<double>(raw_errors) / kFlagSamples, 2)
              << " -> "
              << fmt_pct(static_cast<double>(corrected_errors) / kFlagSamples,
                         2)
              << " (exact recovery; boundary weights";
    for (unsigned i = 0; i + 1 < config.num_subadders(); ++i) {
      std::cout << " " << flag_cec.boundary_weight(i);
    }
    std::cout << ")\n";
  }

  // (c) Area: per-adder EDC vs one CEC unit.
  Table area({"Cascade length", "EDC area [GE]", "CEC area [GE]",
              "saving %"});
  for (const unsigned cascade_len : {1u, 2u, 4u, 8u, 16u}) {
    const auto report = core::compare_cec_vs_edc_area(config, cascade_len, 13);
    area.add_row({std::to_string(cascade_len), fmt(report.edc_area_ge, 1),
                  fmt(report.cec_area_ge, 1),
                  fmt(report.saving_percent, 1)});
  }
  std::cout << "\nArea: per-adder EDC vs consolidated corrector:\n";
  area.print(std::cout);
  std::cout << "\nPaper claim reproduced: EDC area accumulates with the\n"
               "cascade while the CEC unit is a single fixed-cost offset\n"
               "adder at the accelerator output.\n";
  return 0;
}
