/// \file bench_util.hpp
/// Shared helpers for the experiment harnesses: timing and percentile
/// math, the common BENCH_*.json header/footer (harness id, smoke flag,
/// hardware_concurrency-honest metadata, embedded obs run report), ASCII
/// scatter plots for the figure-type experiments, and delta formatting for
/// paper-vs-measured tables. perf_kernels.cpp and service_load.cpp share
/// everything here instead of growing private copies.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "axc/common/table.hpp"
#include "axc/obs/obs.hpp"
#include "axc/obs/report.hpp"

namespace axc::bench {

using Clock = std::chrono::steady_clock;

/// Keeps results observable so timed loops cannot be optimized away.
inline volatile std::uint64_t sink = 0;

/// Median wall time in milliseconds over \p reps runs of \p fn.
template <typename Fn>
double median_ms(int reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    fn();
    const std::chrono::duration<double, std::milli> dt = Clock::now() - start;
    times.push_back(dt.count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Nearest-rank percentile (p in [0, 1]) of a sample, by copy.
inline double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(values.size())));
  return values[std::min(values.size() - 1, rank == 0 ? 0 : rank - 1)];
}

/// Streaming FNV-1a over a byte span, seeded with the running hash.
inline std::uint64_t fnv1a(std::uint64_t hash,
                           std::span<const std::uint8_t> bytes) {
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

/// Counter lookup in an obs snapshot (0 when the counter never fired).
inline std::uint64_t counter_value(const axc::obs::Snapshot& snap,
                                   const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

/// Opens a BENCH_*.json document: "{", harness id, smoke flag, and the
/// machine's hardware_concurrency (consumers must judge scaling ratios
/// against the thread counts a harness reports it actually used).
inline void json_header(std::ostream& out, const std::string& harness,
                        bool smoke) {
  out << "{\n";
  out << "  \"harness\": \"" << harness << "\",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"hardware_concurrency\": "
      << std::max(1u, std::thread::hardware_concurrency()) << ",\n";
}

/// Closes a BENCH_*.json document with the embedded obs run report (every
/// kernel above it executed under the instruments) and the final "}".
inline void json_obs_footer(std::ostream& out) {
  axc::obs::ReportOptions report;
  report.indent = 2;
  out << "  \"axc_obs\": " << axc::obs::report_json(report) << "\n";
  out << "}\n";
}

/// Prints the experiment banner.
inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n================================================================\n"
            << id << " — " << title << "\n"
            << "================================================================\n";
}

/// A point in a 2-D scatter plot, tagged with a single display character.
struct ScatterPoint {
  double x = 0.0;
  double y = 0.0;
  char tag = '*';
};

/// Renders an ASCII scatter plot (x left-to-right, y bottom-to-top), the
/// console stand-in for the paper's Fig. 4 / Fig. 8 style plots.
inline void ascii_scatter(std::ostream& os,
                          const std::vector<ScatterPoint>& points,
                          const std::string& x_label,
                          const std::string& y_label, int width = 64,
                          int height = 20) {
  if (points.empty()) return;
  double min_x = points[0].x, max_x = points[0].x;
  double min_y = points[0].y, max_y = points[0].y;
  for (const auto& p : points) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double span_x = max_x - min_x > 0 ? max_x - min_x : 1.0;
  const double span_y = max_y - min_y > 0 ? max_y - min_y : 1.0;
  std::vector<std::string> grid(height, std::string(width, ' '));
  for (const auto& p : points) {
    const int col = static_cast<int>(
        std::lround((p.x - min_x) / span_x * (width - 1)));
    const int row = static_cast<int>(
        std::lround((p.y - min_y) / span_y * (height - 1)));
    grid[height - 1 - row][col] = p.tag;
  }
  os << "  " << y_label << " (top = " << max_y << ", bottom = " << min_y
     << ")\n";
  for (const auto& line : grid) os << "  |" << line << "\n";
  os << "  +" << std::string(width, '-') << "\n";
  os << "   " << x_label << " (left = " << min_x << ", right = " << max_x
     << ")\n";
}

/// "paper -> measured (xN.NN)" cell for paper-vs-ours tables.
inline std::string vs_paper(double paper, double measured, int digits = 2) {
  if (paper == 0.0) return fmt(measured, digits) + " (paper 0)";
  return fmt(measured, digits) + " (paper " + fmt(paper, digits) + ", x" +
         fmt(measured / paper, 2) + ")";
}

}  // namespace axc::bench
