#include "axc/resilience/monitor.hpp"

#include "axc/common/require.hpp"
#include "axc/image/ssim.hpp"

namespace axc::resilience {

QualityMonitor::QualityMonitor(const QualityContract& contract)
    : contract_(contract) {
  AXC_REQUIRE(contract.window >= 1, "QualityMonitor: window must be >= 1");
  AXC_REQUIRE(contract.min_samples >= 1 &&
                  contract.min_samples <= contract.window,
              "QualityMonitor: min_samples must be in [1, window]");
  AXC_REQUIRE(contract.max_error_rate >= 0.0 &&
                  contract.max_error_rate <= 1.0,
              "QualityMonitor: max_error_rate must be in [0, 1]");
  AXC_REQUIRE(contract.min_ssim >= -1.0 && contract.min_ssim <= 1.0,
              "QualityMonitor: min_ssim must be in [-1, 1]");
}

void QualityMonitor::record(std::uint64_t approx, std::uint64_t exact) {
  numeric_.emplace_back(approx, exact);
  if (numeric_.size() > contract_.window) numeric_.pop_front();
}

void QualityMonitor::record_ssim(double value) {
  AXC_REQUIRE(value >= -1.0 && value <= 1.0,
              "QualityMonitor::record_ssim: SSIM must be in [-1, 1]");
  ssim_.push_back(value);
  if (ssim_.size() > contract_.window) ssim_.pop_front();
}

double QualityMonitor::record_frame(const image::Image& reference,
                                    const image::Image& distorted) {
  const double value = image::ssim(reference, distorted);
  record_ssim(value);
  return value;
}

QualityVerdict QualityMonitor::verdict() const {
  QualityVerdict v;
  // Replay the arithmetic window through the library's streaming metrics
  // so the monitor speaks the same MED/ER vocabulary as every offline
  // analysis.
  error::ErrorAccumulator acc(0);
  for (const auto& [approx, exact] : numeric_) acc.record(approx, exact);
  v.stats = acc.finish(false);

  double ssim_sum = 0.0;
  for (const double s : ssim_) ssim_sum += s;
  v.ssim_samples = ssim_.size();
  v.mean_ssim = ssim_.empty()
                    ? 1.0
                    : ssim_sum / static_cast<double>(ssim_.size());

  if (numeric_.size() >= contract_.min_samples) {
    v.med_ok = v.stats.mean_error_distance <= contract_.max_med;
    v.error_rate_ok = v.stats.error_rate <= contract_.max_error_rate;
  }
  if (ssim_.size() >= contract_.min_samples) {
    v.ssim_ok = v.mean_ssim >= contract_.min_ssim;
  }
  return v;
}

void QualityMonitor::clear() {
  numeric_.clear();
  ssim_.clear();
}

}  // namespace axc::resilience
