/// Regenerates Fig. 8: SAD error surfaces over the motion-search window
/// for the accurate accelerator and the ApxSAD variants, demonstrating
/// that the surface shifts while the global minimum (the chosen motion
/// vector) is preserved for the moderate variants.
#include <algorithm>
#include <iostream>

#include "axc/accel/sad.hpp"
#include "axc/common/rng.hpp"
#include "axc/image/synth.hpp"
#include "axc/video/motion.hpp"
#include "bench_util.hpp"

namespace {

axc::image::Image shift_image(const axc::image::Image& img, int dx, int dy) {
  axc::image::Image out(img.width(), img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      out.set(x, y, img.at_clamped(x - dx, y - dy));
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace axc;
  bench::banner("Fig. 8", "SAD error surfaces of approximate accelerators");

  // Textured reference with a known translation of (+2, -1): the exact
  // surface has its zero at candidate (-2, +1).
  const image::Image reference = image::synthesize_image(
      image::TestImageKind::FractalNoise, 64, 64, 8);
  image::Image textured = reference;
  {  // add mild texture noise so the match is unique
    axc::Rng rng(17);
    for (auto& px : textured.pixels()) {
      px = static_cast<std::uint8_t>(
          std::clamp<int>(px + static_cast<int>(rng.below(9)) - 4, 0, 255));
    }
  }
  const image::Image current = shift_image(textured, 2, -1);
  const video::MotionConfig mc{8, 4};

  const accel::SadAccelerator exact_sad(accel::accu_sad(64));
  const video::MotionEstimator exact_me(mc, exact_sad);
  const video::SadSurface exact_surface =
      exact_me.surface(current, textured, 24, 24);
  const video::MotionVector exact_mv =
      exact_me.search(current, textured, 24, 24);

  Table table({"Accelerator", "min SAD", "argmin (dx,dy)", "MV preserved?",
               "mean surface shift"});
  const auto describe = [&](const std::string& name,
                            const accel::SadAccelerator& sad) {
    const video::MotionEstimator me(mc, sad);
    const video::SadSurface surface = me.surface(current, textured, 24, 24);
    const video::MotionVector mv = me.search(current, textured, 24, 24);
    double shift = 0.0;
    std::uint64_t best = surface.values.front();
    for (std::size_t i = 0; i < surface.values.size(); ++i) {
      shift += static_cast<double>(surface.values[i]) -
               static_cast<double>(exact_surface.values[i]);
      best = std::min(best, surface.values[i]);
    }
    shift /= static_cast<double>(surface.values.size());
    table.add_row({name, std::to_string(best),
                   "(" + std::to_string(mv.dx) + "," + std::to_string(mv.dy) +
                       ")",
                   mv == exact_mv ? "yes" : "NO", fmt(shift, 1)});
  };

  describe("AccuSAD", exact_sad);
  for (int variant = 1; variant <= 5; ++variant) {
    const accel::SadAccelerator sad(accel::apx_sad_variant(variant, 4, 64));
    describe(sad.config().name(), sad);
  }
  std::cout << "\nExact motion vector: (" << exact_mv.dx << ","
            << exact_mv.dy << ")\n\n";
  table.print(std::cout);

  // Surface cross-sections along dy = exact_mv.dy, the visual of Fig. 8.
  std::cout << "\nSurface cross-section at dy = " << exact_mv.dy
            << " (columns dx = -4..4):\n";
  Table section({"Accelerator", "-4", "-3", "-2", "-1", "0", "+1", "+2",
                 "+3", "+4"});
  const auto section_row = [&](const std::string& name,
                               const accel::SadAccelerator& sad) {
    const video::MotionEstimator me(mc, sad);
    const video::SadSurface s = me.surface(current, textured, 24, 24);
    std::vector<std::string> cells = {name};
    for (int dx = -4; dx <= 4; ++dx) {
      cells.push_back(std::to_string(s.at(dx, exact_mv.dy)));
    }
    section.add_row(std::move(cells));
  };
  section_row("AccuSAD", exact_sad);
  for (int variant = 1; variant <= 3; ++variant) {
    const accel::SadAccelerator sad(accel::apx_sad_variant(variant, 4, 64));
    section_row(sad.config().name(), sad);
  }
  section.print(std::cout);
  std::cout << "\nPaper observation reproduced: approximate surfaces are\n"
               "shifted copies with the same trend; the global minimum and\n"
               "hence the motion vector are preserved for ApxSAD1..3. The\n"
               "wire-carry variants (4, 5) can inflate the exact-match cell\n"
               "— see the motion tests — which is why the case study\n"
               "validates them at the application level (Fig. 9).\n";
  return 0;
}
