/// \file convolve.hpp
/// 3x3 convolution on exact or approximate MAC hardware.
///
/// This is the computational core of the paper's Fig. 10 experiment: a
/// low-pass filter whose multiply-accumulate datapath can be built from
/// the approximate multipliers (Sec. 5) and adders (Sec. 4) of the
/// library. The filter models fixed-point accelerator hardware: 8-bit
/// pixels, small unsigned kernel coefficients, truncating power-of-two
/// normalization, clamp-to-edge borders.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "axc/arith/adder.hpp"
#include "axc/arith/multiplier.hpp"
#include "axc/image/image.hpp"

namespace axc::image {

/// A non-negative 3x3 kernel with power-of-two normalization:
/// out = (sum coeff_i * pixel_i) >> shift.
struct Kernel3x3 {
  std::array<unsigned, 9> coeffs{};  ///< row-major, each < 16
  unsigned shift = 0;                ///< normalizer, sum(coeffs) == 1<<shift

  /// The classic separable binomial low-pass: 1-2-1 / 2-4-2 / 1-2-1, /16.
  static Kernel3x3 gaussian();

  /// A softer low-pass: all-ones with center 8, /16.
  static Kernel3x3 smooth();

  /// Validates coefficient range and normalization; throws otherwise.
  void validate() const;
};

/// The arithmetic hardware a filter is mapped onto. Default-constructed:
/// exact multiplier and exact adders (the reference datapath).
struct MacHardware {
  /// Multiplier for pixel x coefficient (8x8); nullptr = exact.
  std::shared_ptr<const arith::ApproxMultiplier> multiplier;
  /// Builds the accumulator adders; empty = exact.
  arith::AdderFactory adder_factory;
  std::string label = "Exact";
};

/// Convolves \p input with \p kernel on the given hardware.
Image convolve3x3(const Image& input, const Kernel3x3& kernel,
                  const MacHardware& hardware = {});

}  // namespace axc::image
