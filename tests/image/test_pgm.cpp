#include "axc/image/pgm.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "axc/image/synth.hpp"

namespace axc::image {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(Pgm, RoundTripBinary) {
  const Image original =
      synthesize_image(TestImageKind::FractalNoise, 32, 24, 5);
  const std::string path = temp_path("roundtrip.pgm");
  write_pgm(original, path);
  const Image loaded = read_pgm(path);
  EXPECT_EQ(loaded, original);
}

TEST(Pgm, ReadsAsciiP2) {
  const std::string path = temp_path("ascii.pgm");
  {
    std::ofstream out(path);
    out << "P2\n# a comment\n2 2\n255\n0 128\n255 7\n";
  }
  const Image img = read_pgm(path);
  EXPECT_EQ(img.at(0, 0), 0);
  EXPECT_EQ(img.at(1, 0), 128);
  EXPECT_EQ(img.at(0, 1), 255);
  EXPECT_EQ(img.at(1, 1), 7);
}

TEST(Pgm, CommentsInHeaderSkipped) {
  const std::string path = temp_path("comments.pgm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "P5\n#c1\n2\n#c2\n1\n255\n";
    out.put(char(9));
    out.put(char(200));
  }
  const Image img = read_pgm(path);
  EXPECT_EQ(img.at(0, 0), 9);
  EXPECT_EQ(img.at(1, 0), 200);
}

TEST(Pgm, RejectsBadMagic) {
  const std::string path = temp_path("bad_magic.pgm");
  {
    std::ofstream out(path);
    out << "P6\n2 2\n255\n";
  }
  EXPECT_THROW(read_pgm(path), std::runtime_error);
}

TEST(Pgm, RejectsTruncatedPixelData) {
  const std::string path = temp_path("truncated.pgm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "P5\n4 4\n255\n";
    out.put(char(1));  // 1 of 16 bytes
  }
  EXPECT_THROW(read_pgm(path), std::runtime_error);
}

TEST(Pgm, RejectsMissingFile) {
  EXPECT_THROW(read_pgm(temp_path("does_not_exist.pgm")),
               std::runtime_error);
}

TEST(Pgm, RejectsWideMaxval) {
  const std::string path = temp_path("wide_maxval.pgm");
  {
    std::ofstream out(path);
    out << "P2\n1 1\n65535\n1234\n";
  }
  EXPECT_THROW(read_pgm(path), std::runtime_error);
}

/// Expects read_pgm over an in-memory buffer to throw with a message
/// containing \p needle — corrupt-input regressions without touching disk.
void expect_rejects(const std::string& buffer, const std::string& needle) {
  std::istringstream in(buffer);
  try {
    read_pgm(in);
    FAIL() << "accepted corrupt buffer: " << buffer;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message '" << e.what() << "' lacks '" << needle << "'";
  }
}

TEST(PgmHardening, StreamOverloadRoundTrips) {
  std::istringstream in(std::string("P5\n2 2\n255\n") +
                        std::string("\x01\x02\x03\x04", 4));
  const Image img = read_pgm(in);
  EXPECT_EQ(img.at(0, 0), 1);
  EXPECT_EQ(img.at(1, 1), 4);
}

TEST(PgmHardening, RejectsEmptyBuffer) {
  expect_rejects("", "truncated header");
}

TEST(PgmHardening, RejectsMagicOnly) {
  expect_rejects("P5", "truncated header");
}

TEST(PgmHardening, RejectsNonNumericWidth) {
  // std::stoi would happily parse the leading "2" of "2x2".
  expect_rejects("P5\n2x2 2\n255\n\0\0\0\0", "width");
}

TEST(PgmHardening, RejectsNegativeHeight) {
  expect_rejects("P5\n2 -2\n255\n", "height");
}

TEST(PgmHardening, RejectsZeroDimensions) {
  expect_rejects("P5\n0 4\n255\n", "positive");
  expect_rejects("P5\n4 0\n255\n", "positive");
}

TEST(PgmHardening, RejectsOversizedImage) {
  // 99999 * 99999 ~ 10 Gpx: must throw before allocating, not after.
  expect_rejects("P5\n99999 99999\n255\n", "pixels");
}

TEST(PgmHardening, RejectsOverflowingDimensionToken) {
  // 12 digits overflows int; the strict parser rejects on length.
  expect_rejects("P5\n999999999999 2\n255\n", "width");
}

TEST(PgmHardening, RejectsMissingSeparatorAfterMaxval) {
  expect_rejects("P5\n1 1\n255", "separator");
}

TEST(PgmHardening, RejectsBinaryPixelAboveMaxval) {
  expect_rejects(std::string("P5\n1 1\n7\n") + '\x80', "maxval");
}

TEST(PgmHardening, RejectsAsciiPixelAboveMaxval) {
  expect_rejects("P2\n1 1\n255\n300\n", "pixel");
}

TEST(PgmHardening, RejectsNonNumericAsciiPixel) {
  expect_rejects("P2\n2 1\n255\n12 xy\n", "pixel");
}

TEST(PgmHardening, RejectsTruncatedAsciiPixels) {
  expect_rejects("P2\n2 2\n255\n1 2 3\n", "pixel");
}

TEST(PgmHardening, AcceptsMaxSizeBoundary) {
  // Exactly at the cap parses the header fine and then fails on payload,
  // proving the size gate itself is not off by one.
  expect_rejects("P5\n8192 8192\n255\n", "truncated pixel");
}

}  // namespace
}  // namespace axc::image
