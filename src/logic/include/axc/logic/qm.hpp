/// \file qm.hpp
/// Quine–McCluskey two-level minimization.
///
/// This is the "synthesis" half of the substrate that stands in for the
/// paper's Design Compiler flow: an exact prime-implicant generator with an
/// essential-prime + greedy set-cover selection, adequate and deterministic
/// for the small functions in the component library (3-input full adders,
/// 4-input 2x2 multipliers, arbitrary tables up to ~16 inputs).
#pragma once

#include <cstdint>
#include <vector>

namespace axc::logic {

/// A product term (implicant) over n variables.
///
/// A variable participates in the product iff its bit is set in `care`;
/// its required polarity is then the corresponding bit of `value`.
/// Example over (x2,x1,x0): care=0b101, value=0b001 encodes x0 & !x2.
struct Cube {
  std::uint32_t value = 0;
  std::uint32_t care = 0;

  /// True iff \p minterm is contained in this cube.
  bool covers(std::uint32_t minterm) const {
    return (minterm & care) == (value & care);
  }

  /// Number of literals in the product term.
  int literal_count() const { return __builtin_popcount(care); }

  bool operator==(const Cube&) const = default;
};

/// Result of a single-output minimization.
struct SopCover {
  std::vector<Cube> cubes;  ///< empty => constant 0
  bool is_const_one = false;

  /// Evaluates the sum-of-products on \p input_word.
  bool eval(std::uint32_t input_word) const;

  /// Literal-count cost (sum over cubes), the classic two-level area proxy.
  int cost() const;
};

/// Minimizes the single-output function given by its on-set minterms over
/// \p num_inputs variables. Minterms outside [0, 2^n) are rejected.
///
/// The cover is verified internally: it covers exactly the on-set.
SopCover minimize_sop(unsigned num_inputs,
                      const std::vector<std::uint32_t>& on_set);

/// All prime implicants of the on-set (exposed for testing and for the
/// consolidated-error-correction analysis, which inspects error patterns).
std::vector<Cube> prime_implicants(unsigned num_inputs,
                                   const std::vector<std::uint32_t>& on_set);

}  // namespace axc::logic
