#include "axc/arith/multiplier.hpp"

#include <bit>

#include "axc/common/bits.hpp"
#include "axc/common/require.hpp"
#include "axc/arith/gear.hpp"

namespace axc::arith {

PartialProductAdderFactory gear_partial_product_factory() {
  return [](unsigned width, unsigned /*significance*/)
             -> std::unique_ptr<Adder> {
    // ETAII-like geometry: the largest R = P dividing the width while
    // still leaving at least two sub-adders (R <= width/3 guarantees
    // L = 2R < width). Falls back to exact for widths with no such split.
    for (unsigned d = width / 3; d >= 1; --d) {
      const GeArConfig config{width, d, d};
      if (width % d == 0 && config.is_valid() && !config.is_exact()) {
        return std::make_unique<GeArAdder>(config);
      }
    }
    return std::make_unique<ExactAdder>(width);
  };
}

ApproxMultiplier::ApproxMultiplier(MultiplierConfig config)
    : config_(std::move(config)) {
  // Width 16 is the paper's largest evaluated multiplier (Fig. 6); the cap
  // also keeps the widest partial-product adder at 24 bits.
  require(config_.width >= 2 && config_.width <= 16 &&
              std::has_single_bit(config_.width),
          "ApproxMultiplier: width must be a power of two in [2, 16]");
  require(config_.approx_lsbs <= 2 * config_.width,
          "ApproxMultiplier: approx_lsbs exceeds the product width");
  if (config_.adder_label.empty()) {
    if (config_.adder_factory) {
      config_.adder_label = "custom";
    } else if (config_.adder_cell == FullAdderKind::Accurate ||
               config_.approx_lsbs == 0) {
      config_.adder_label = "Exact";
    } else {
      config_.adder_label =
          std::string(full_adder_name(config_.adder_cell)) + " below bit " +
          std::to_string(config_.approx_lsbs);
    }
  }
}

const Adder& ApproxMultiplier::adder_for(unsigned w,
                                         unsigned significance) const {
  // Adders whose whole span lies above the approximate region are
  // identical regardless of exact significance: clamp the key so they
  // share one instance.
  const unsigned clamped = std::min(significance, config_.approx_lsbs);
  const auto key = std::make_pair(w, clamped);
  auto it = adders_.find(key);
  if (it == adders_.end()) {
    std::unique_ptr<Adder> adder;
    if (config_.adder_factory) {
      adder = config_.adder_factory(w, clamped);
    } else if (config_.adder_cell == FullAdderKind::Accurate ||
               clamped >= config_.approx_lsbs) {
      adder = std::make_unique<ExactAdder>(w);
    } else {
      std::vector<FullAdderKind> cells(w, FullAdderKind::Accurate);
      for (unsigned i = 0; i < w && clamped + i < config_.approx_lsbs; ++i) {
        cells[i] = config_.adder_cell;
      }
      adder = std::make_unique<RippleAdder>(std::move(cells));
    }
    it = adders_.emplace(key, std::move(adder)).first;
  }
  return *it->second;
}

std::uint64_t ApproxMultiplier::multiply(std::uint64_t a,
                                         std::uint64_t b) const {
  return multiply_rec(config_.width, a & low_mask(config_.width),
                      b & low_mask(config_.width), 0);
}

std::uint64_t ApproxMultiplier::multiply_rec(unsigned w, std::uint64_t a,
                                             std::uint64_t b,
                                             unsigned significance) const {
  if (w == 2) {
    return mul2x2(config_.block, static_cast<unsigned>(a),
                  static_cast<unsigned>(b));
  }
  const unsigned half = w / 2;
  const std::uint64_t al = bit_field(a, 0, half);
  const std::uint64_t ah = bit_field(a, half, half);
  const std::uint64_t bl = bit_field(b, 0, half);
  const std::uint64_t bh = bit_field(b, half, half);

  // Each half product carries its own weight within the final product.
  const std::uint64_t ll = multiply_rec(half, al, bl, significance);
  const std::uint64_t lh = multiply_rec(half, al, bh, significance + half);
  const std::uint64_t hl = multiply_rec(half, ah, bl, significance + half);
  const std::uint64_t hh = multiply_rec(half, ah, bh, significance + w);

  // P = hh*2^w + (lh + hl)*2^(w/2) + ll. hh and ll occupy disjoint bit
  // ranges; the middle sum needs a w-bit adder at weight half and the
  // final combine covers bits [w/2, 2w) — the low w/2 bits of ll pass
  // through untouched (adder cells on structurally-zero operands would
  // waste area and bias the result).
  const std::uint64_t mid =
      adder_for(w, significance + half).add(lh, hl);
  const std::uint64_t upper_base = ((hh << w) | ll) >> half;
  const std::uint64_t upper =
      adder_for(2 * w - half, significance + half).add(upper_base, mid);
  return ((upper << half) | (ll & low_mask(half))) & low_mask(2 * w);
}

std::string ApproxMultiplier::name() const {
  return "Mul" + std::to_string(config_.width) + "x" +
         std::to_string(config_.width) + "<" +
         std::string(mul2x2_name(config_.block)) + ", " +
         config_.adder_label + ">";
}

bool ApproxMultiplier::is_exact() const {
  if (config_.block != Mul2x2Kind::Accurate) return false;
  if (config_.adder_factory) {
    // Conservative: a custom family is presumed approximate somewhere.
    return false;
  }
  return config_.adder_cell == FullAdderKind::Accurate ||
         config_.approx_lsbs == 0;
}

std::uint64_t exact_multiply(unsigned width, std::uint64_t a,
                             std::uint64_t b) {
  require(width >= 1 && width <= 32, "exact_multiply: width in [1, 32]");
  return (a & low_mask(width)) * (b & low_mask(width));
}

}  // namespace axc::arith
