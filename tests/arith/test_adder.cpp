#include "axc/arith/adder.hpp"

#include <gtest/gtest.h>

#include "axc/common/bits.hpp"
#include "axc/common/rng.hpp"

namespace axc::arith {
namespace {

TEST(ExactAdder, MatchesArithmeticExhaustively8Bit) {
  const ExactAdder adder(8);
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      EXPECT_EQ(adder.add(a, b, 0), a + b);
      EXPECT_EQ(adder.add(a, b, 1), a + b + 1u);
    }
  }
}

TEST(ExactAdder, MasksHighOperandBits) {
  const ExactAdder adder(4);
  EXPECT_EQ(adder.add(0xF5, 0x01, 0), 0x6u);
}

TEST(ExactAdder, WidthValidation) {
  EXPECT_THROW(ExactAdder(0), std::invalid_argument);
  EXPECT_THROW(ExactAdder(64), std::invalid_argument);
  EXPECT_NO_THROW(ExactAdder(63));
}

TEST(RippleAdder, AllAccurateCellsEqualExact) {
  const RippleAdder ripple =
      RippleAdder::lsb_approximated(8, FullAdderKind::Apx3, 0);
  EXPECT_TRUE(ripple.is_exact());
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      EXPECT_EQ(ripple.add(a, b, 0), a + b);
    }
  }
}

// For an LSB-approximated ripple adder the upper bits can only be wrong
// through the carry crossing the boundary, so the absolute error is
// bounded by the weight of the approximated region.
class RippleErrorBound
    : public ::testing::TestWithParam<std::tuple<FullAdderKind, unsigned>> {};

TEST_P(RippleErrorBound, ErrorBoundedByApproxRegion) {
  const auto [kind, lsbs] = GetParam();
  const unsigned width = 8;
  const RippleAdder adder = RippleAdder::lsb_approximated(width, kind, lsbs);
  // Worst case: every approximated sum bit wrong (2^lsbs - 1) plus a wrong
  // carry into the accurate region propagating fully (2^width+ ... bounded
  // by 2^(width+1)); the practically useful bound asserted here is that
  // the error never exceeds the full output range and the *typical* bound
  // 2^(lsbs+1) holds for the carry-preserving variants.
  std::uint64_t worst = 0;
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const std::uint64_t approx = adder.add(a, b, 0);
      const std::uint64_t exact = a + b;
      const std::uint64_t err =
          approx > exact ? approx - exact : exact - approx;
      worst = std::max(worst, err);
    }
  }
  if (lsbs == 0) {
    EXPECT_EQ(worst, 0u);
  } else {
    EXPECT_GT(worst, 0u);  // approximation must actually bite
    EXPECT_LT(worst, std::uint64_t{1} << (width + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndWidths, RippleErrorBound,
    ::testing::Combine(::testing::Values(FullAdderKind::Apx1,
                                         FullAdderKind::Apx2,
                                         FullAdderKind::Apx3,
                                         FullAdderKind::Apx4,
                                         FullAdderKind::Apx5),
                       ::testing::Values(0u, 2u, 4u, 6u)));

TEST(RippleAdder, MoreApproxLsbsNeverReducesErrorRate8Bit) {
  for (const FullAdderKind kind :
       {FullAdderKind::Apx2, FullAdderKind::Apx3, FullAdderKind::Apx5}) {
    double previous_rate = -1.0;
    for (unsigned lsbs = 0; lsbs <= 8; lsbs += 2) {
      const RippleAdder adder =
          RippleAdder::lsb_approximated(8, kind, lsbs);
      unsigned errors = 0;
      for (unsigned a = 0; a < 256; ++a) {
        for (unsigned b = 0; b < 256; ++b) {
          errors += adder.add(a, b, 0) != a + b;
        }
      }
      const double rate = errors / 65536.0;
      EXPECT_GE(rate, previous_rate) << full_adder_name(kind) << " lsbs "
                                     << lsbs;
      previous_rate = rate;
    }
  }
}

TEST(RippleAdder, NameSummarizesLayout) {
  EXPECT_EQ(RippleAdder::lsb_approximated(8, FullAdderKind::Apx3, 4).name(),
            "Ripple<ApxFA3 x4/8>");
  EXPECT_EQ(RippleAdder::lsb_approximated(8, FullAdderKind::Apx3, 0).name(),
            "Ripple<AccuFA/8>");
}

TEST(RippleAdder, ValidationRejectsBadShapes) {
  EXPECT_THROW(RippleAdder({}), std::invalid_argument);
  EXPECT_THROW(RippleAdder::lsb_approximated(4, FullAdderKind::Apx1, 5),
               std::invalid_argument);
}

TEST(SubtractVia, ExactAdderGivesTwosComplement) {
  const ExactAdder adder(8);
  EXPECT_EQ(subtract_via(adder, 10, 3) & 0xFF, 7u);
  EXPECT_EQ(bit_of(subtract_via(adder, 10, 3), 8), 1u);  // no borrow
  // 3 - 10 = -7 -> 0xF9 two's complement, borrow (carry 0).
  EXPECT_EQ(subtract_via(adder, 3, 10) & 0xFF, 0xF9u);
  EXPECT_EQ(bit_of(subtract_via(adder, 3, 10), 8), 0u);
}

TEST(AbsDiffVia, ExactAdderGivesAbsoluteDifference) {
  const ExactAdder adder(8);
  for (unsigned a = 0; a < 256; a += 7) {
    for (unsigned b = 0; b < 256; b += 5) {
      const std::uint64_t expected = a > b ? a - b : b - a;
      EXPECT_EQ(abs_diff_via(adder, a, b), expected) << a << " " << b;
    }
  }
}

TEST(AbsDiffVia, ApproximateAdderStaysClose) {
  // With 2 approximated LSBs, |SAD cell error| stays within a few LSB
  // weights — the property the motion-estimation case study relies on.
  const RippleAdder adder =
      RippleAdder::lsb_approximated(8, FullAdderKind::Apx3, 2);
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const unsigned a = static_cast<unsigned>(rng.bits(8));
    const unsigned b = static_cast<unsigned>(rng.bits(8));
    const std::uint64_t exact = a > b ? a - b : b - a;
    const std::uint64_t approx = abs_diff_via(adder, a, b);
    const std::uint64_t err =
        approx > exact ? approx - exact : exact - approx;
    EXPECT_LE(err, 16u) << a << " " << b;
  }
}

}  // namespace
}  // namespace axc::arith
