#include "axc/cluster/ring.hpp"

#include <algorithm>

#include "axc/common/require.hpp"

namespace axc::cluster {

std::vector<NodeIdRange> static_ring(std::size_t nodes) {
  require(nodes >= 1, "static_ring: need at least one node");
  require(nodes <= 4096, "static_ring: ring size out of range");
  std::vector<NodeIdRange> ranges{NodeIdRange::all()};
  while (ranges.size() < nodes) {
    // Split the widest range; among equals the lowest stencil. Selecting
    // by (mask, stencil) makes the layout a pure function of N.
    const auto widest = std::min_element(
        ranges.begin(), ranges.end(),
        [](const NodeIdRange& a, const NodeIdRange& b) {
          if (a.mask != b.mask) return a.mask < b.mask;
          return a.stencil < b.stencil;
        });
    const NodeIdRange split = *widest;
    *widest = split.reduced(false);
    ranges.push_back(split.reduced(true));
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const NodeIdRange& a, const NodeIdRange& b) {
              return a.stencil < b.stencil;
            });
  return ranges;
}

RoutingTable::RoutingTable(std::size_t nodes) : ranges_(static_ring(nodes)) {}

std::size_t RoutingTable::owner_index(const NodeId& key) const {
  // Ranges are sorted by stencil and partition the space, so the owner is
  // the last range whose stencil is <= key.
  std::size_t low = 0;
  std::size_t high = ranges_.size();
  while (high - low > 1) {
    const std::size_t mid = low + (high - low) / 2;
    if (ranges_[mid].stencil <= key) {
      low = mid;
    } else {
      high = mid;
    }
  }
  return low;
}

std::vector<std::size_t> RoutingTable::replicas(const NodeId& key,
                                                std::size_t k) const {
  std::vector<std::size_t> order(ranges_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              return xor_distance(ranges_[a].stencil, key) <
                     xor_distance(ranges_[b].stencil, key);
            });
  order.resize(std::min(k, order.size()));
  return order;
}

}  // namespace axc::cluster
