/// Ablation (DESIGN.md §4.2): hand-mapped structural netlists vs the
/// Quine-McCluskey two-level synthesizer, for every component with a
/// closed truth table. Shows where complex-cell mapping beats two-level
/// SOP and that both realizations are functionally identical.
#include <iostream>

#include "axc/logic/adder_netlists.hpp"
#include "axc/logic/characterize.hpp"
#include "axc/logic/mul_netlists.hpp"
#include "axc/logic/synth.hpp"
#include "bench_util.hpp"

int main() {
  using namespace axc;
  bench::banner("Ablation", "Hand-mapped netlists vs two-level synthesis");

  Table table({"Component", "Hand-mapped [GE]", "Synthesized (QM) [GE]",
               "Functionally equal?"});
  const auto compare = [&](const std::string& name,
                           const logic::Netlist& hand) {
    if (hand.inputs().empty() || hand.gate_count() == 0) {
      table.add_row({name, fmt(hand.area_ge(), 2), "(wiring only)", "yes"});
      return;
    }
    const logic::TruthTable spec = logic::netlist_truth_table(hand);
    logic::SynthStats stats;
    const logic::Netlist synth = logic::synthesize(spec, name + "_qm", &stats);
    const bool equal = logic::netlist_truth_table(synth) == spec;
    table.add_row({name, fmt(hand.area_ge(), 2), fmt(stats.area_ge, 2),
                   equal ? "yes" : "NO"});
  };

  for (const arith::FullAdderKind kind : arith::kAllFullAdderKinds) {
    compare(std::string(arith::full_adder_name(kind)),
            logic::full_adder_netlist(kind));
  }
  for (const arith::Mul2x2Kind kind : arith::kAllMul2x2Kinds) {
    compare(std::string(arith::mul2x2_name(kind)),
            logic::mul2x2_netlist(kind));
    compare("Cfg" + std::string(arith::mul2x2_name(kind)),
            logic::cfg_mul2x2_netlist(kind));
  }
  // A couple of multi-bit blocks for scale. Two-level minimization is
  // exponential in inputs, so the comparison stops at 12-input blocks
  // (the 16-input GeAr(8,2,2) already exceeds what flat SOP can do —
  // itself a finding: structural composition is what scales).
  {
    const std::vector<arith::FullAdderKind> cells(
        4, arith::FullAdderKind::Accurate);
    compare("Ripple4", logic::ripple_adder_netlist(cells));
    compare("GeAr(6,2,2)", logic::gear_adder_netlist({6, 2, 2}));
  }
  table.print(std::cout);
  std::cout << "\nTakeaway: XOR/MAJ/AOI complex cells let the hand mapping\n"
               "beat two-level SOP on the carry-style functions, while QM\n"
               "wins on the already-flat approximate variants. Both always\n"
               "realize the same function (verified per row).\n";
  return 0;
}
