/// Integration tests: the cross-layer flows the paper's title promises,
/// exercised end to end — logic-layer cells priced by the substrate,
/// selected by the architecture-layer explorer, deployed in application-
/// layer accelerators, and managed at run time.
#include <gtest/gtest.h>

#include "axc/accel/configurable.hpp"
#include "axc/accel/filter.hpp"
#include "axc/accel/sad_netlist.hpp"
#include "axc/common/rng.hpp"
#include "axc/core/cec.hpp"
#include "axc/core/explorer.hpp"
#include "axc/core/manager.hpp"
#include "axc/error/evaluate.hpp"
#include "axc/image/ssim.hpp"
#include "axc/image/synth.hpp"
#include "axc/logic/mul_netlists.hpp"
#include "axc/logic/verilog.hpp"
#include "axc/video/encoder.hpp"

namespace axc {
namespace {

// Logic -> architecture: explore the GeAr space, pick a config under a
// constraint, instantiate it, and verify the picked accuracy holds on
// real additions.
TEST(CrossLayer, ExploreSelectInstantiateVerify) {
  const auto space = core::explore_gear_space(12);
  const std::size_t pick = core::min_area_config_with_accuracy(space, 95.0);
  ASSERT_LT(pick, space.size());
  const arith::GeArAdder adder(space[pick].config);
  error::EvalOptions opts;
  opts.samples = 1u << 18;
  const auto measured = error::evaluate_adder(adder, opts);
  EXPECT_NEAR(measured.accuracy_percent(),
              space[pick].point.accuracy_percent, 0.3);
  EXPECT_GE(measured.accuracy_percent(), 94.5);
}

// Logic -> application: the selected SAD mode's netlist power must
// correlate with the encoder-level bit-rate trade-off (cheaper hardware,
// more bits) for a fixed variant family.
TEST(CrossLayer, SadPowerVsBitrateTradeoffIsMonotone) {
  video::SequenceConfig sc;
  sc.width = 32;
  sc.height = 32;
  sc.frames = 3;
  const video::Sequence seq = video::generate_sequence(sc);
  video::EncoderConfig ec;
  ec.motion.block_size = 8;
  ec.motion.search_range = 2;

  double previous_power = 1e18;
  std::uint64_t previous_bits = 0;
  for (const unsigned lsbs : {2u, 4u, 6u}) {
    const accel::SadConfig config = accel::apx_sad_variant(2, lsbs, 64);
    const double power = accel::characterize_sad(config, 64).power_nw;
    const accel::SadAccelerator sad(config);
    const std::uint64_t bits =
        video::Encoder(ec, sad).encode(seq).total_bits;
    EXPECT_LT(power, previous_power) << "lsbs " << lsbs;
    EXPECT_GE(bits, previous_bits) << "lsbs " << lsbs;
    previous_power = power;
    previous_bits = bits;
  }
}

// Architecture -> run time: characterize modes, let the manager assign
// them, then actually run the assigned accelerators and check the
// assignment's quality ordering is realized.
TEST(CrossLayer, ManagerAssignmentIsExecutable) {
  accel::ConfigurableSad unit({accel::apx_sad_variant(3, 2, 16),
                               accel::apx_sad_variant(3, 6, 16)});
  std::vector<core::AcceleratorMode> modes;
  for (unsigned m = 0; m < unit.mode_count(); ++m) {
    // Quality proxy: 100 - mean relative SAD error on random blocks.
    axc::Rng rng(4);
    unit.select(m);
    double rel = 0.0;
    std::vector<std::uint8_t> a(16), b(16);
    for (int t = 0; t < 200; ++t) {
      std::uint64_t exact = 0;
      for (int i = 0; i < 16; ++i) {
        a[i] = static_cast<std::uint8_t>(rng.bits(8));
        b[i] = static_cast<std::uint8_t>(rng.bits(8));
        exact += a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
      }
      rel += std::abs(static_cast<double>(unit.sad(a, b)) -
                      static_cast<double>(exact)) /
             static_cast<double>(std::max<std::uint64_t>(exact, 1));
    }
    modes.push_back({unit.mode_config(m).name(), unit.mode_power_nw(m),
                     100.0 * (1.0 - rel / 200.0)});
  }
  const core::ApproximationManager manager(modes);
  const auto assignment = manager.assign_min_power(
      {{"strict", 99.0}, {"lenient", 0.0}});
  ASSERT_TRUE(assignment.feasible);
  // The strict app must not get the aggressive 6-LSB mode.
  EXPECT_NE(modes[assignment.mode_of_app[0]].name,
            accel::apx_sad_variant(3, 6, 16).name());
  // The lenient app gets the cheapest mode overall.
  double cheapest = 1e18;
  for (const auto& mode : modes) cheapest = std::min(cheapest, mode.power_nw);
  EXPECT_DOUBLE_EQ(modes[assignment.mode_of_app[1]].power_nw, cheapest);
}

// Application -> logic: an image filtered on approximate hardware scores
// the SSIM that the accelerator's characterization predicts (same config,
// same substrate), and the hardware can be exported as RTL.
TEST(CrossLayer, FilterQualityAndRtlExportAgreeOnConfig) {
  accel::FilterConfig config;
  config.adder_cell = arith::FullAdderKind::Apx3;
  config.approx_lsbs = 4;
  const accel::FilterAccelerator filter(config);
  const image::Image img =
      image::synthesize_image(image::TestImageKind::Blobs, 48, 48, 6);
  const image::Image exact =
      image::convolve3x3(img, image::Kernel3x3::gaussian());
  const image::Image approx = filter.apply(img, image::Kernel3x3::gaussian());
  EXPECT_GT(image::ssim(exact, approx), 0.8);

  // The same datapath's multiplier lane exports to RTL with the expected
  // interface.
  logic::MulNetlistSpec spec;
  spec.width = 8;
  spec.adder_cell = config.adder_cell;
  spec.approx_lsbs = config.approx_lsbs;
  const std::string v =
      logic::to_verilog(logic::multiplier_netlist(spec), "filter_lane");
  EXPECT_NE(v.find("module filter_lane ("), std::string::npos);
  EXPECT_NE(v.find("input  wire a0,"), std::string::npos);
  EXPECT_NE(v.find("output wire p15"), std::string::npos);
}

// Consolidated error correction closes the loop: an accelerator built on
// GeAr adders plus one output-side flag corrector behaves exactly.
TEST(CrossLayer, GearAcceleratorWithFlagCecIsExact) {
  const arith::GeArConfig config{16, 4, 4};
  const arith::GeArAdder adder(config);
  const core::FlagDrivenCec cec(config);
  axc::Rng rng(8);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    ASSERT_EQ(cec.correct(adder, a, b), a + b);
  }
}

}  // namespace
}  // namespace axc
