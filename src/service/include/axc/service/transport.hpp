/// \file transport.hpp
/// Transport abstraction of the service: one interface, two realizations.
///
///  - LoopbackConnection binds a client directly to an in-process Server —
///    no sockets, no scheduling noise — which is what the deterministic
///    unit/integration tests and the service_throughput bench run on.
///  - TcpConnection (tcp.hpp) carries the same frames over a POSIX socket
///    for real traffic.
///
/// Client is the typed facade over either: it serializes requests, applies
/// a per-request deadline, and decodes responses (throwing ServiceError on
/// non-Ok statuses), so call sites never touch wire bytes.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "axc/service/protocol.hpp"
#include "axc/service/server.hpp"

namespace axc::service {

/// Typed transport failure. Derives std::runtime_error so legacy catch
/// sites keep working; the Kind tells retry policies what went wrong and
/// whether the connection is still usable (it never is, except Timeout on
/// loopback-style transports — retrying clients drop the connection on any
/// TransportError and reconnect, which is always safe).
class TransportError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    Connect,        ///< could not establish the connection
    BrokenStream,   ///< peer vanished / mid-frame EOF / write to dead peer
    Timeout,        ///< read deadline expired (or a frame was dropped)
    Corrupt,        ///< response bytes fail header validation
    FrameOverflow,  ///< peer announced a frame above kMaxFrameBytes
    Injected,       ///< synthetic fault from axc::chaos
  };

  TransportError(Kind kind, const std::string& message)
      : std::runtime_error("transport/" + std::string(kind_name(kind)) +
                           ": " + message),
        kind_(kind) {}

  Kind kind() const { return kind_; }

  static std::string_view kind_name(Kind kind) {
    switch (kind) {
      case Kind::Connect: return "connect";
      case Kind::BrokenStream: return "broken_stream";
      case Kind::Timeout: return "timeout";
      case Kind::Corrupt: return "corrupt";
      case Kind::FrameOverflow: return "frame_overflow";
      case Kind::Injected: return "injected";
    }
    return "unknown";
  }

 private:
  Kind kind_;
};

/// One bidirectional request/response channel. Implementations may be
/// used from one thread at a time (open one connection per client thread).
class Connection {
 public:
  virtual ~Connection() = default;

  /// Sends one request payload and blocks for its response payload.
  /// Throws TransportError (a std::runtime_error) on transport failure.
  virtual Bytes roundtrip(std::span<const std::uint8_t> request) = 0;
};

/// In-process transport: roundtrip() submits to the Server and waits.
/// Rejections (Overloaded, ShuttingDown, ...) arrive as ordinary response
/// payloads, exactly as they would over TCP.
class LoopbackConnection final : public Connection {
 public:
  explicit LoopbackConnection(Server& server) : server_(server) {}

  Bytes roundtrip(std::span<const std::uint8_t> request) override {
    return server_.call(request);
  }

 private:
  Server& server_;
};

/// Typed client over any Connection.
class Client {
 public:
  explicit Client(Connection& connection) : connection_(connection) {}

  /// Deadline stamped on every subsequent request; 0 = none.
  void set_deadline_ms(std::uint32_t deadline_ms) {
    deadline_ms_ = deadline_ms;
  }
  std::uint32_t deadline_ms() const { return deadline_ms_; }

  /// Each call throws ServiceError when the server answers a non-Ok
  /// status, DecodeError on malformed bytes, std::runtime_error on
  /// transport failure.
  CharacterizeResponse characterize_adder(
      const CharacterizeAdderRequest& request);
  CharacterizeResponse characterize_multiplier(
      const CharacterizeMultiplierRequest& request);
  EvaluateErrorResponse evaluate_error(const EvaluateErrorRequest& request);
  GearDesignSpaceResponse gear_design_space(
      const GearDesignSpaceRequest& request);
  EncodeProbeResponse encode_probe(const EncodeProbeRequest& request);
  void ping();
  /// Transport-level graceful stop; the TCP server must have been started
  /// with allow_remote_shutdown (loopback servers answer BadRequest).
  void shutdown();

  /// Served accuracy level of the last successful call (0 = full
  /// fidelity; >0 = the server degraded this answer under overload).
  std::uint8_t last_served_level() const { return last_served_level_; }

 private:
  Bytes call(const Bytes& request);

  Connection& connection_;
  std::uint32_t deadline_ms_ = 0;
  std::uint8_t last_served_level_ = 0;
};

}  // namespace axc::service
