/// Design-space sweeps: grid shape and ordering are pinned (the service
/// layer's byte-identical caching depends on them), analytic figures in
/// the sweep entries agree with the per-config models, and the
/// sweep-to-architecture bridge (widen_hetero_blocks + HeteroSadUnit)
/// preserves exactness where it must.
#include "axc/designspace/explorer.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "axc/accel/sad.hpp"

namespace axc::designspace {
namespace {

TEST(ExploreHeteroSpace, GridShapeAndBaseline) {
  // width 12, block 4 -> 3 blocks: baseline + 3 CarryCut + 3 Truncated.
  const auto space = explore_hetero_space(12, 4, true);
  ASSERT_EQ(space.size(), 7u);
  EXPECT_EQ(space[0].approx_blocks, 0u);
  EXPECT_TRUE(space[0].model.exact);
  EXPECT_DOUBLE_EQ(space[0].point.accuracy_percent, 100.0);
  for (std::size_t i = 1; i <= 3; ++i) {
    EXPECT_EQ(space[i].low_kind, HeteroSubAdder::CarryCut) << i;
    EXPECT_EQ(space[i].approx_blocks, static_cast<unsigned>(i)) << i;
  }
  for (std::size_t i = 4; i <= 6; ++i) {
    EXPECT_EQ(space[i].low_kind, HeteroSubAdder::Truncated) << i;
    EXPECT_EQ(space[i].approx_blocks, static_cast<unsigned>(i - 3)) << i;
  }
  // Excluding Truncated halves the approximate half of the grid.
  EXPECT_EQ(explore_hetero_space(12, 4, false).size(), 4u);
}

TEST(ExploreHeteroSpace, EntriesMatchStandaloneModels) {
  const auto space = explore_hetero_space(8, 2, true);
  for (const auto& entry : space) {
    const HeteroErrorModel model = hetero_error_model(entry.blocks);
    EXPECT_DOUBLE_EQ(entry.model.med, model.med);
    EXPECT_DOUBLE_EQ(entry.model.error_rate, model.error_rate);
    EXPECT_DOUBLE_EQ(entry.point.accuracy_percent,
                     100.0 * (1.0 - model.error_rate));
    // A fully-truncated adder is pure wiring (area 0); everything else
    // must instantiate real cells.
    const bool all_truncated = entry.low_kind == HeteroSubAdder::Truncated &&
                               entry.approx_blocks == entry.blocks.size();
    if (all_truncated) {
      EXPECT_EQ(entry.point.area_ge, 0.0);
    } else {
      EXPECT_GT(entry.point.area_ge, 0.0);
    }
  }
  // Area must be monotone non-increasing in approximation depth within
  // one kind (the whole point of the family).
  for (std::size_t i = 2; i <= 4; ++i) {
    EXPECT_LT(space[i].point.area_ge, space[i - 1].point.area_ge);
  }
}

TEST(ExploreHeteroSpace, DeterministicAcrossRuns) {
  const auto a = explore_hetero_space(10, 3, true);
  const auto b = explore_hetero_space(10, 3, true);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].point.area_ge, b[i].point.area_ge) << i;
    EXPECT_EQ(a[i].model.med, b[i].model.med) << i;
    EXPECT_EQ(a[i].point.name, b[i].point.name) << i;
  }
}

TEST(ExploreCompressorMulSpace, GridShapeAndModels) {
  // Baseline + {PairXor, OrPair} x 1..4.
  const auto space = explore_compressor_mul_space(6, 4);
  ASSERT_EQ(space.size(), 9u);
  EXPECT_EQ(space[0].kind, CompressorKind::Exact42);
  EXPECT_TRUE(space[0].model.exact);
  for (std::size_t i = 1; i <= 4; ++i) {
    EXPECT_EQ(space[i].kind, CompressorKind::PairXor) << i;
    EXPECT_EQ(space[i].approx_columns, static_cast<unsigned>(i)) << i;
  }
  for (std::size_t i = 5; i <= 8; ++i) {
    EXPECT_EQ(space[i].kind, CompressorKind::OrPair) << i;
    EXPECT_EQ(space[i].approx_columns, static_cast<unsigned>(i - 4)) << i;
  }
  for (const auto& entry : space) {
    const MulErrorModel model = compressor_mul_error_model(
        6, entry.kind, entry.approx_columns);
    EXPECT_DOUBLE_EQ(entry.model.med_est, model.med_est);
    EXPECT_DOUBLE_EQ(entry.point.accuracy_percent,
                     100.0 * (1.0 - model.error_rate_est));
  }
}

TEST(ExploreStaticAdderSpace, GridShapeAndModels) {
  // Baseline + {LOA, LOAWA, HEAA} x 1..3.
  const auto space = explore_static_adder_space(10, 3);
  ASSERT_EQ(space.size(), 10u);
  EXPECT_EQ(space[0].approx_lsbs, 0u);
  EXPECT_TRUE(space[0].model.exact);
  for (const auto& entry : space) {
    const StaticAdderModel model = static_adder_error_model(
        entry.kind, 10, entry.approx_lsbs);
    EXPECT_DOUBLE_EQ(entry.model.med, model.med);
    EXPECT_EQ(entry.model.wce, model.wce);
  }
}

TEST(WidenHeteroBlocks, GrowsTopAccurateBlock) {
  const auto blocks = make_hetero_blocks(8, 4, HeteroSubAdder::CarryCut, 1);
  const auto widened = widen_hetero_blocks(blocks, 16);
  EXPECT_EQ(hetero_width(widened), 16u);
  // Low structure preserved.
  EXPECT_EQ(widened[0].kind, HeteroSubAdder::CarryCut);
  EXPECT_EQ(widened[0].width, 4u);
  EXPECT_EQ(widened.back().kind, HeteroSubAdder::Accurate);
}

TEST(WidenHeteroBlocks, AppendsWhenTopIsApproximate) {
  const auto blocks = make_hetero_blocks(8, 4, HeteroSubAdder::CarryCut, 2);
  const auto widened = widen_hetero_blocks(blocks, 12);
  EXPECT_EQ(hetero_width(widened), 12u);
  EXPECT_EQ(widened.size(), blocks.size() + 1);
  EXPECT_EQ(widened.back().kind, HeteroSubAdder::Accurate);
  EXPECT_EQ(widened.back().width, 4u);
}

TEST(HeteroSadUnit, ExactConfigMatchesAccurateSad) {
  const auto blocks = make_hetero_blocks(16, 4, HeteroSubAdder::CarryCut, 0);
  const HeteroSadUnit hetero(blocks, 16);
  const accel::SadAccelerator exact(accel::accu_sad(16));
  EXPECT_TRUE(hetero.is_exact());
  std::vector<std::uint8_t> a(16), b(16);
  std::iota(a.begin(), a.end(), static_cast<std::uint8_t>(0));
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<std::uint8_t>(255 - 16 * i);
  }
  EXPECT_EQ(hetero.sad(a, b), exact.sad(a, b));
}

TEST(HeteroSadUnit, ApproximateConfigUnderestimates) {
  const auto blocks = make_hetero_blocks(16, 4, HeteroSubAdder::Truncated, 2);
  const HeteroSadUnit hetero(blocks, 16);
  const accel::SadAccelerator exact(accel::accu_sad(16));
  EXPECT_FALSE(hetero.is_exact());
  std::vector<std::uint8_t> a(16, 200), b(16, 13);
  // Deficit-only arithmetic can only lose accumulated value.
  EXPECT_LE(hetero.sad(a, b), exact.sad(a, b));
}

}  // namespace
}  // namespace axc::designspace
