#include "axc/designspace/static_adder.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "axc/common/require.hpp"
#include "axc/logic/adder_netlists.hpp"

namespace axc::designspace {

namespace {

std::uint64_t low_mask(unsigned bits) {
  return bits >= 64 ? ~0ull : (1ull << bits) - 1;
}

/// Low-part result of one static adder: the approximate low-k sum bits
/// plus the carry fed into the exact upper part. The whole-adder error is
/// (low + (carry << k)) - (al + bl), independent of the upper bits.
struct LowPart {
  std::uint64_t bits;
  std::uint64_t carry;
};

LowPart low_part(StaticAdderKind kind, unsigned k, std::uint64_t al,
                 std::uint64_t bl) {
  LowPart out{0, 0};
  switch (kind) {
    case StaticAdderKind::Loa:
      out.bits = al | bl;
      out.carry = (al >> (k - 1)) & (bl >> (k - 1)) & 1;
      break;
    case StaticAdderKind::Loawa:
      out.bits = al | bl;
      out.carry = 0;
      break;
    case StaticAdderKind::Heaa:
      out.bits = al ^ bl;
      out.carry = (al >> (k - 1)) & (bl >> (k - 1)) & 1;
      break;
  }
  return out;
}

}  // namespace

const char* static_adder_kind_name(StaticAdderKind kind) {
  switch (kind) {
    case StaticAdderKind::Loa:
      return "LOA";
    case StaticAdderKind::Loawa:
      return "LOAWA";
    case StaticAdderKind::Heaa:
      return "HEAA";
  }
  return "?";
}

StaticApproxAdder::StaticApproxAdder(StaticAdderKind kind, unsigned width,
                                     unsigned approx_lsbs)
    : kind_(kind), width_(width), approx_lsbs_(approx_lsbs) {
  require(width >= 1 && width <= 63 && approx_lsbs <= width,
          "StaticApproxAdder: invalid shape");
}

std::uint64_t StaticApproxAdder::add(std::uint64_t a, std::uint64_t b,
                                     unsigned carry_in) const {
  a &= low_mask(width_);
  b &= low_mask(width_);
  const unsigned k = approx_lsbs_;
  if (k == 0) return a + b + (carry_in ? 1 : 0);
  require(carry_in == 0,
          "StaticApproxAdder: the gate-level adders have no carry-in pin");
  const LowPart low = low_part(kind_, k, a & low_mask(k), b & low_mask(k));
  const std::uint64_t upper = (a >> k) + (b >> k) + low.carry;
  return (upper << k) | low.bits;
}

std::string StaticApproxAdder::name() const {
  return std::string(static_adder_kind_name(kind_)) +
         std::to_string(width_) + "_" + std::to_string(approx_lsbs_);
}

logic::Netlist static_adder_netlist(StaticAdderKind kind, unsigned width,
                                    unsigned approx_lsbs) {
  switch (kind) {
    case StaticAdderKind::Loa:
      return logic::loa_adder_netlist(width, approx_lsbs);
    case StaticAdderKind::Loawa:
      return logic::loawa_adder_netlist(width, approx_lsbs);
    case StaticAdderKind::Heaa:
      return logic::heaa_adder_netlist(width, approx_lsbs);
  }
  require(false, "static_adder_netlist: unknown kind");
  return logic::Netlist("unreachable");
}

StaticAdderModel static_adder_error_model(StaticAdderKind kind,
                                          unsigned width,
                                          unsigned approx_lsbs) {
  require(width >= 1 && width <= 63 && approx_lsbs <= width,
          "static_adder_error_model: invalid shape");
  require(approx_lsbs <= 12,
          "static_adder_error_model: enumeration capped at 12 lsbs");
  StaticAdderModel model;
  const unsigned k = approx_lsbs;
  if (k == 0) {
    model.exact = true;
    return model;
  }
  // The upper part is exact and the low-part carry enters it exactly, so
  // the whole-adder error equals the low-part error for every setting of
  // the upper bits: enumerate all 4^k low pairs and the statistics are
  // mathematically exact (LOA can overshoot via its recovered carry, so
  // errors are signed — accumulate |D|).
  std::uint64_t err_count = 0;
  std::uint64_t abs_sum = 0;
  const std::uint64_t span = 1ull << k;
  for (std::uint64_t al = 0; al < span; ++al) {
    for (std::uint64_t bl = 0; bl < span; ++bl) {
      const LowPart low = low_part(kind, k, al, bl);
      const std::int64_t approx =
          static_cast<std::int64_t>(low.bits + (low.carry << k));
      const std::int64_t exact = static_cast<std::int64_t>(al + bl);
      const std::uint64_t dist =
          static_cast<std::uint64_t>(std::llabs(approx - exact));
      if (dist != 0) ++err_count;
      abs_sum += dist;
      model.wce = std::max(model.wce, dist);
    }
  }
  const double pairs = std::ldexp(1.0, 2 * static_cast<int>(k));
  model.error_rate = static_cast<double>(err_count) / pairs;
  model.med = static_cast<double>(abs_sum) / pairs;
  model.nmed =
      model.med / (std::ldexp(1.0, static_cast<int>(width) + 1) - 2.0);
  model.exact = err_count == 0;
  return model;
}

}  // namespace axc::designspace
