/// \file configurable.hpp
/// Run-time accuracy-configurable SAD accelerator.
///
/// Sec. 6: "In case of adaptive systems, where an accelerator is required
/// to operate sometimes in approximate mode and sometimes in accurate
/// mode, [...] usage of configurable adder/multiplier blocks is required.
/// A configuration word can then set the control bits of different
/// approximate logic blocks in the accelerator data path."
///
/// Hardware model (the CfgMul pattern of Fig. 5 generalized): every
/// configurable full-adder position carries both its accurate and its
/// approximate implementation plus a 2:1 mux per output, steered by the
/// configuration word. Area is therefore the accurate datapath plus, per
/// configurable bit position, the approximate cell and two muxes; power in
/// a given mode is that mode's active datapath plus the leakage of the
/// inactive cells.
#pragma once

#include <cstdint>
#include <vector>

#include "axc/accel/sad.hpp"
#include "axc/accel/sad_netlist.hpp"

namespace axc::accel {

/// A SAD accelerator whose approximation mode is selected at run time.
class ConfigurableSad final : public SadUnit {
 public:
  /// \p modes are the selectable configurations; all must share
  /// block_pixels. Mode 0 is selected initially. An accurate mode is
  /// always available as the implicit last mode.
  explicit ConfigurableSad(std::vector<SadConfig> modes);

  /// Number of selectable modes (the user modes + the accurate one).
  unsigned mode_count() const {
    return static_cast<unsigned>(modes_.size());
  }

  /// The configuration word: selects the active mode.
  void select(unsigned mode);
  unsigned selected() const { return selected_; }
  const SadConfig& mode_config(unsigned mode) const;

  /// SAD through the currently selected datapath.
  std::uint64_t sad(std::span<const std::uint8_t> a,
                    std::span<const std::uint8_t> b) const override;

  unsigned block_pixels() const override {
    return modes_.front().block_pixels;
  }

  /// "Cfg[<active mode name>]" — the identity tracks the selection.
  std::string name() const override;

  /// True when the currently selected mode is accurate.
  bool is_exact() const override;

  /// sad() through a fixed mode is purely functional; select() itself must
  /// not race with concurrent sad() calls (mode switches happen between
  /// frames, not inside one).
  bool is_concurrent_safe() const override { return true; }

  /// Total area of the configurable datapath: accurate hardware + every
  /// mode's approximate cells + the selection muxes.
  double area_ge() const;

  /// Power estimate for \p mode: the active datapath's switching power
  /// plus leakage of the inactive (gated) cells.
  double mode_power_nw(unsigned mode) const;

 private:
  std::vector<SadConfig> modes_;
  std::vector<SadAccelerator> engines_;
  std::vector<SadHardwareReport> reports_;
  unsigned selected_ = 0;
};

}  // namespace axc::accel
