/// \file report.hpp
/// JSON run reports over the obs registry.
///
/// A report has two kinds of content:
///
///  - the *deterministic* section ("counters", "histograms", "derived"):
///    integer counts accumulated with commutative adds plus ratios computed
///    from them. With the same workload this section is byte-identical for
///    any worker-thread count (AXC_EVAL_THREADS=1/2/8 — tested).
///  - the *timings* section ("spans"): wall-clock span statistics, honest
///    but nondeterministic, emitted only when ReportOptions::include_timings
///    is set.
///
/// Derived metrics are generic over naming conventions: every counter pair
/// "X.hits"/"X.misses" yields "X.hit_rate", and every histogram yields its
/// "mean" inline — so e.g. the characterization-memo hit rate and the mean
/// bitsliced lane occupancy appear in every bench report without the bench
/// knowing those instruments exist.
#pragma once

#include <string>

#include "axc/obs/obs.hpp"

namespace axc::obs {

struct ReportOptions {
  /// Include the nondeterministic wall-clock "spans" section.
  bool include_timings = true;
  /// Left margin (spaces) applied to every line of the fragment; lets a
  /// harness embed the object into its own JSON at the right depth.
  int indent = 0;
};

/// The report as one JSON object:
/// {"enabled": ..., "counters": {...}, "histograms": {...},
///  "derived": {...}, "spans": {...}} — keys in name order.
std::string report_json(const Snapshot& snap, const ReportOptions& options);

/// report_json over a fresh snapshot().
std::string report_json(const ReportOptions& options = {});

/// Writes {"axc_obs": <report_json>} to \p path (truncating).
void write_report(const std::string& path, const ReportOptions& options = {});

}  // namespace axc::obs
