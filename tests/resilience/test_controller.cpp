#include "axc/resilience/controller.hpp"

#include <gtest/gtest.h>

#include "axc/accel/sad.hpp"
#include "axc/resilience/gear_sad.hpp"

namespace axc::resilience {
namespace {

AccuracyLadder test_ladder() {
  return build_gear_sad_ladder(16, {{8, 2, 2}, {8, 2, 4}}, 1);
}

TEST(AccuracyLadder, GearLadderOrdersAggressiveToExact) {
  const AccuracyLadder ladder = test_ladder();
  // {8,2,2} at CEC 0 and 1, {8,2,4} at CEC 1, then the exact fallback.
  ASSERT_EQ(ladder.size(), 4u);
  EXPECT_EQ(ladder.rung(0).name, "GeArSAD<GeAr(N=8,R=2,P=2),4x4>");
  EXPECT_EQ(ladder.rung(1).name, "GeArSAD<GeAr(N=8,R=2,P=2)+CEC1,4x4>");
  EXPECT_EQ(ladder.rung(2).name, "GeArSAD<GeAr(N=8,R=2,P=4)+CEC1,4x4>");
  EXPECT_TRUE(ladder.rung(3).sad->is_exact());
  // The latency proxy grows along the ladder and tops out at the exact
  // ripple datapath.
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GE(ladder.rung(i).latency_proxy, ladder.rung(i - 1).latency_proxy)
        << i;
  }
  EXPECT_DOUBLE_EQ(ladder.rung(3).latency_proxy, 1.0);
  EXPECT_THROW(ladder.rung(4), std::out_of_range);
}

TEST(AccuracyLadder, RejectsEmptyAndMismatchedGeometry) {
  EXPECT_THROW(AccuracyLadder({}), std::invalid_argument);
  std::vector<AccuracyRung> rungs;
  rungs.push_back({"a", std::make_shared<GearSad>(16, arith::GeArConfig{8, 2, 2}), 0.5});
  rungs.push_back({"b", std::make_shared<GearSad>(64, arith::GeArConfig{8, 2, 2}), 0.5});
  EXPECT_THROW(AccuracyLadder(std::move(rungs)), std::invalid_argument);
}

TEST(BuildGearSadLadder, SkipsRedundantRungsAfterExactConfig) {
  // {8,4,4} is already exact at CEC 0: no GeAr rung is kept (it would
  // duplicate the fallback) and the ladder collapses to the exact engine.
  const AccuracyLadder ladder = build_gear_sad_ladder(16, {{8, 4, 4}}, 2);
  EXPECT_EQ(ladder.size(), 1u);
  EXPECT_TRUE(ladder.rung(0).sad->is_exact());
}

TEST(AdaptiveController, EscalatesOnSustainedViolation) {
  AdaptiveController controller(
      test_ladder(),
      QualityContract{.max_med = 1.0, .window = 4, .min_samples = 2},
      ControllerPolicy{.violation_windows = 2, .calm_windows = 2});
  EXPECT_EQ(controller.level(), 0u);

  // No evidence yet: hold.
  EXPECT_EQ(controller.step(), ControlAction::Hold);

  controller.monitor().record(30, 10);
  controller.monitor().record(35, 10);
  // First violating verdict: within hysteresis, still level 0.
  EXPECT_EQ(controller.step(), ControlAction::Hold);
  EXPECT_EQ(controller.level(), 0u);
  // Second consecutive violation: escalate and clear the window.
  EXPECT_EQ(controller.step(), ControlAction::Escalate);
  EXPECT_EQ(controller.level(), 1u);
  EXPECT_EQ(controller.escalations(), 1u);
  EXPECT_EQ(controller.monitor().arithmetic_samples(), 0u);
  EXPECT_EQ(controller.active_rung().name,
            "GeArSAD<GeAr(N=8,R=2,P=2)+CEC1,4x4>");
}

TEST(AdaptiveController, SaturatesAtTheExactRung) {
  AdaptiveController controller(
      test_ladder(),
      QualityContract{.max_med = 1.0, .window = 2, .min_samples = 1},
      ControllerPolicy{.violation_windows = 1});
  for (int i = 0; i < 10; ++i) {
    controller.monitor().record(1000, 0);
    controller.step();
  }
  EXPECT_EQ(controller.level(), controller.ladder_size() - 1);
  EXPECT_EQ(controller.escalations(), controller.ladder_size() - 1);
  EXPECT_TRUE(controller.active_sad().is_exact());
  // Still violating at the top: nothing left to escalate to.
  controller.monitor().record(1000, 0);
  EXPECT_EQ(controller.step(), ControlAction::Hold);
  EXPECT_EQ(controller.level(), controller.ladder_size() - 1);
}

TEST(AdaptiveController, DeescalatesOnlyAfterSustainedHeadroom) {
  AdaptiveController controller(
      test_ladder(),
      QualityContract{.max_med = 10.0, .window = 4, .min_samples = 2},
      ControllerPolicy{.violation_windows = 1,
                       .calm_windows = 2,
                       .deescalate_margin = 0.5});
  // Push to level 1.
  controller.monitor().record(100, 0);
  controller.monitor().record(100, 0);
  ASSERT_EQ(controller.step(), ControlAction::Escalate);
  ASSERT_EQ(controller.level(), 1u);

  // Compliant but without headroom (MED 8 > 0.5 * 10): no de-escalation,
  // however long it lasts.
  for (int i = 0; i < 6; ++i) {
    controller.monitor().record(18, 10);
    controller.monitor().record(18, 10);
    ASSERT_EQ(controller.step(), ControlAction::Hold) << i;
  }
  EXPECT_EQ(controller.level(), 1u);

  // Deep headroom (MED 1 <= 5): first calm verdict holds, second returns.
  controller.monitor().clear();
  controller.monitor().record(11, 10);
  controller.monitor().record(11, 10);
  EXPECT_EQ(controller.step(), ControlAction::Hold);
  controller.monitor().record(11, 10);
  EXPECT_EQ(controller.step(), ControlAction::Deescalate);
  EXPECT_EQ(controller.level(), 0u);
  EXPECT_EQ(controller.deescalations(), 1u);
}

TEST(AdaptiveController, NeverDeescalatesBelowLevelZero) {
  AdaptiveController controller(
      test_ladder(),
      QualityContract{.max_med = 10.0, .window = 4, .min_samples = 1},
      ControllerPolicy{.calm_windows = 1});
  for (int i = 0; i < 5; ++i) {
    controller.monitor().record(10, 10);
    EXPECT_EQ(controller.step(), ControlAction::Hold) << i;
    EXPECT_EQ(controller.level(), 0u);
  }
  EXPECT_EQ(controller.deescalations(), 0u);
}

TEST(AdaptiveController, PolicyValidation) {
  EXPECT_THROW(AdaptiveController(test_ladder(), QualityContract{},
                                  ControllerPolicy{.violation_windows = 0}),
               std::invalid_argument);
  EXPECT_THROW(AdaptiveController(test_ladder(), QualityContract{},
                                  ControllerPolicy{.calm_windows = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      AdaptiveController(test_ladder(), QualityContract{},
                         ControllerPolicy{.deescalate_margin = 0.0}),
      std::invalid_argument);
  EXPECT_THROW(
      AdaptiveController(test_ladder(), QualityContract{},
                         ControllerPolicy{.deescalate_margin = 1.5}),
      std::invalid_argument);
}

}  // namespace
}  // namespace axc::resilience
