#include "axc/arith/wallace.hpp"

#include <array>
#include <vector>

#include "axc/common/bits.hpp"
#include "axc/common/require.hpp"

namespace axc::arith {

WallaceMultiplier::WallaceMultiplier(const WallaceConfig& config)
    : config_(config) {
  require(config.width >= 2 && config.width <= 16,
          "WallaceMultiplier: width must be in [2, 16]");
  require(config.approx_lsbs <= 2 * config.width,
          "WallaceMultiplier: approx_lsbs exceeds the product width");
}

std::uint64_t WallaceMultiplier::multiply(std::uint64_t a,
                                          std::uint64_t b) const {
  const unsigned w = config_.width;
  const unsigned columns = 2 * w;
  a &= low_mask(w);
  b &= low_mask(w);

  // Column-major dot diagram: column c holds the partial-product bits of
  // weight 2^c. Zero-valued partial products stay in the diagram — the
  // hardware's AND gates exist regardless of data, and approximate
  // compressors do *not* treat zeros neutrally (e.g. ApxFA3 sums
  // 0+0+0 -> 1), so dropping them would diverge from the netlist.
  std::vector<std::vector<unsigned>> column(columns);
  for (unsigned i = 0; i < w; ++i) {
    for (unsigned j = 0; j < w; ++j) {
      column[i + j].push_back(bit_of(a, i) & bit_of(b, j));
    }
  }

  const auto cell_for = [&](unsigned col) {
    return col < config_.approx_lsbs ? config_.cell
                                     : FullAdderKind::Accurate;
  };

  // Wallace reduction: greedily compress every column with 3:2 (full
  // adder) and 2:2 (half adder = full adder with cin 0) stages until no
  // column holds more than two bits.
  bool reduced = true;
  while (reduced) {
    reduced = false;
    std::vector<std::vector<unsigned>> next(columns);
    for (unsigned c = 0; c < columns; ++c) {
      auto& bits = column[c];
      std::size_t i = 0;
      while (bits.size() - i >= 3) {
        const FullAdderOut out =
            full_add(cell_for(c), bits[i], bits[i + 1], bits[i + 2]);
        next[c].push_back(out.sum);
        if (c + 1 < columns) next[c + 1].push_back(out.carry);
        i += 3;
        reduced = true;
      }
      if (bits.size() - i == 2 && bits.size() + next[c].size() > 2) {
        const FullAdderOut out =
            full_add(cell_for(c), bits[i], bits[i + 1], 0);
        next[c].push_back(out.sum);
        if (c + 1 < columns) next[c + 1].push_back(out.carry);
        i += 2;
        reduced = true;
      }
      for (; i < bits.size(); ++i) next[c].push_back(bits[i]);
    }
    column = std::move(next);
    // Terminate when every column has <= 2 entries.
    bool done = true;
    for (const auto& bits : column) done &= bits.size() <= 2;
    if (done) break;
  }

  // Final carry-propagate merge of the two remaining rows, using the same
  // per-column cell policy (the "final adder" of the Wallace design).
  std::uint64_t result = 0;
  unsigned carry = 0;
  for (unsigned c = 0; c < columns; ++c) {
    const unsigned x = column[c].size() > 0 ? column[c][0] : 0;
    const unsigned y = column[c].size() > 1 ? column[c][1] : 0;
    const FullAdderOut out = full_add(cell_for(c), x, y, carry);
    result |= static_cast<std::uint64_t>(out.sum) << c;
    carry = out.carry;
  }
  return result & low_mask(columns);
}

std::string WallaceMultiplier::name() const {
  const std::string geometry =
      "Wallace" + std::to_string(config_.width) + "x" +
      std::to_string(config_.width);
  if (is_exact()) return geometry + "<Exact>";
  return geometry + "<" + std::string(full_adder_name(config_.cell)) +
         " below bit " + std::to_string(config_.approx_lsbs) + ">";
}

}  // namespace axc::arith
