/// \file adder_netlists.hpp
/// Structural (gate-level) realizations of the adder library.
///
/// These generators produce the netlists that the paper would have written
/// in VHDL and pushed through Design Compiler: hand-mapped 1-bit full
/// adders (Table III), LSB-approximate ripple adders, and the GeAr
/// sub-adder arrangement of Fig. 3. Their functional equivalence to the
/// behavioural models in axc::arith is asserted by the test suite.
#pragma once

#include <span>
#include <utility>

#include "axc/arith/full_adder.hpp"
#include "axc/arith/gear.hpp"
#include "axc/logic/netlist.hpp"

namespace axc::logic {

/// Sum/carry net pair produced by a 1-bit adder instance.
struct FaNets {
  NetId sum;
  NetId carry;
};

/// Instantiates one full adder of \p kind inside \p netlist. The mapping is
/// the canonical compact structure per variant (e.g. the accurate adder is
/// XOR2/XOR2 + MAJ3; ApxFA5 is pure wiring and adds no gates at all).
FaNets add_full_adder(Netlist& netlist, arith::FullAdderKind kind, NetId a,
                      NetId b, NetId cin);

/// A standalone full-adder block: inputs a, b, cin; outputs sum, cout.
Netlist full_adder_netlist(arith::FullAdderKind kind);

/// Instantiates a ripple adder over existing nets; \p cells selects the
/// full-adder type per position (cells.size() == a.size() == b.size()).
/// Returns the sum nets plus the final carry as the extra last element.
std::vector<NetId> add_ripple_adder(Netlist& netlist,
                                    std::span<const NetId> a,
                                    std::span<const NetId> b, NetId cin,
                                    std::span<const arith::FullAdderKind> cells);

/// A standalone ripple adder: inputs a0..aN-1, b0..bN-1; outputs s0..sN
/// (sN is the carry out). LSB-approximate layouts come from
/// arith::RippleAdder::lsb_approximated's cell vector.
Netlist ripple_adder_netlist(std::span<const arith::FullAdderKind> cells);

/// A standalone LOA (lower-part OR adder): the low \p approx_lsbs result
/// bits are OR gates, one AND recovers the carry into the exact upper
/// ripple part. Equivalent to arith::LoaAdder (tested).
Netlist loa_adder_netlist(unsigned width, unsigned approx_lsbs);

/// A standalone ETA-I adder: the low part is a saturation chain (from the
/// first (1,1) pair downward all sum bits read 1), the upper part an exact
/// ripple adder with no carry from below. Equivalent to arith::EtaiAdder.
Netlist etai_adder_netlist(unsigned width, unsigned approx_lsbs);

/// A standalone GeAr adder exactly as drawn in Fig. 3: k overlapping L-bit
/// accurate ripple sub-adders, each with constant-zero carry-in; the low P
/// bits of every sub-adder but the first are carry prediction only and are
/// not connected to outputs. The P-bit overlap is computed redundantly in
/// hardware, which is why GeAr area grows with P (Table IV).
Netlist gear_adder_netlist(const arith::GeArConfig& config);

}  // namespace axc::logic
