/// Example: the closed resilience loop (fault injection -> quality
/// guardbands -> adaptive accuracy control) around the Fig. 9 video
/// encoder.
///
/// A synthetic sequence is encoded with a GeAr-based SAD accelerator
/// starting at its most aggressive configuration. Mid-sequence, a seeded
/// SEU-style fault campaign strikes the accelerator's result word. The run
/// is shown twice:
///   1. open loop  — the aggressive rung is pinned; the quality contract
///      is measured but never acted on (violations pile up);
///   2. closed loop — the AdaptiveController escalates (more CEC
///      iterations, more accurate GeAr config, exact fallback) until the
///      contract holds, and de-escalates once the faults stop.
///
/// After both runs an axc::obs run report (guardband trips, controller
/// escalations, faults injected, SAD-batch lane occupancy, per-frame encode
/// spans, ...) is written to the --report-out path (default
/// REPORT_resilient_encoder.json; "-" suppresses it). Set AXC_OBS=0 to
/// switch the instruments off.
#include <cstdio>
#include <iostream>
#include <string>

#include "axc/obs/report.hpp"
#include "axc/resilience/resilient_encoder.hpp"
#include "axc/video/sequence.hpp"
#include "cli_util.hpp"

namespace {

constexpr const char* kUsage =
    "usage: resilient_encoder [bit_flip_probability] [seed]\n"
    "                         [--report-out <path>]\n"
    "\n"
    "Encodes a synthetic sequence twice through a fault campaign: open\n"
    "loop (aggressive rung pinned) and closed loop (AdaptiveController).\n"
    "\n"
    "arguments:\n"
    "  bit_flip_probability   per-bit SEU probability, 0..1 (default 0.03)\n"
    "  seed                   fault-campaign seed (default 2024)\n"
    "\n"
    "options:\n"
    "  --report-out <path>    obs run report destination, '-' = none\n"
    "                         (default REPORT_resilient_encoder.json)\n"
    "  -h, --help             this text\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace axc;

  if (cli::wants_help(argc, argv)) {
    cli::print_usage(kUsage);
    return 0;
  }
  double flip_p = 0.03;
  std::uint64_t seed = 2024;
  std::string report_path = "REPORT_resilient_encoder.json";
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--report-out") {
      report_path = cli::flag_value(kUsage, argc, argv, i);
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      cli::usage_error(kUsage, "unknown option '" + arg + "'");
    } else if (positional == 0) {
      flip_p = cli::require_double(kUsage, "bit_flip_probability", argv[i],
                                   0.0, 1.0);
      ++positional;
    } else if (positional == 1) {
      seed = static_cast<std::uint64_t>(
          cli::require_long(kUsage, "seed", argv[i], 0, 1L << 62));
      ++positional;
    } else {
      cli::usage_error(kUsage, "too many arguments");
    }
  }

  video::SequenceConfig sc;
  sc.width = 64;
  sc.height = 64;
  sc.frames = 20;
  sc.objects = 2;
  sc.seed = 7;
  const video::Sequence sequence = video::generate_sequence(sc);

  video::EncoderConfig ec;
  ec.motion.block_size = 8;
  ec.motion.search_range = 2;
  ec.quant_step = 12;

  // Aggressive-to-accurate GeAr ladder over the 8x8 SAD accelerator.
  const resilience::AccuracyLadder ladder = resilience::build_gear_sad_ladder(
      64, {{8, 2, 2}, {8, 2, 4}}, 1);

  resilience::QualityContract contract;
  contract.max_med = 64.0;       // arithmetic spot-check MED budget
  contract.max_error_rate = 0.9;
  contract.min_ssim = 0.55;      // frame reconstruction floor
  contract.window = 16;
  contract.min_samples = 2;

  resilience::ControllerPolicy policy;
  policy.violation_windows = 1;
  policy.calm_windows = 2;

  resilience::FaultWindow faults;
  faults.spec.bit_flip_probability = flip_p;
  faults.spec.seed = seed;
  faults.first_frame = 6;
  faults.last_frame = 13;

  const resilience::ResilientEncoder encoder(ec, ladder, contract, policy);

  const auto print_run = [&](const char* title,
                             const resilience::ResilientEncodeStats& stats) {
    std::printf("%s\n", title);
    std::printf(
        "  frame level rung                                   ssim    faults "
        "ok action\n");
    for (const resilience::FrameTrace& t : stats.trace) {
      const char* action = t.action == resilience::ControlAction::Escalate
                               ? "ESCALATE"
                           : t.action == resilience::ControlAction::Deescalate
                               ? "deescalate"
                               : "-";
      std::printf("  %5zu %5zu %-38s %6.4f %9llu %2s %s\n", t.frame, t.level,
                  t.rung_name.c_str(), t.ssim,
                  static_cast<unsigned long long>(t.faults_injected),
                  t.contract_ok ? "ok" : "!!", action);
    }
    std::printf(
        "  totals: %llu bits, %.2f dB, mean SSIM %.4f, min SSIM %.4f\n",
        static_cast<unsigned long long>(stats.totals.total_bits),
        stats.totals.psnr_db, stats.mean_ssim, stats.min_ssim);
    std::printf(
        "  violations %zu frames, escalations %zu, de-escalations %zu, "
        "peak level %zu, final level %zu\n\n",
        stats.frames_in_violation, stats.escalations, stats.deescalations,
        stats.peak_level, stats.final_level);
  };

  std::printf("fault campaign: p(bit flip) = %g, frames [%zu, %zu), seed %llu\n\n",
              flip_p, faults.first_frame, faults.last_frame,
              static_cast<unsigned long long>(seed));

  print_run("open loop (aggressive rung pinned, contract only measured):",
            encoder.encode_pinned(sequence, 0, faults));
  print_run("closed loop (AdaptiveController):",
            encoder.encode(sequence, faults));

  std::cout << "The closed loop escalates while the fault campaign is live\n"
               "and walks back down the accuracy ladder afterwards; the\n"
               "open loop keeps violating its contract instead.\n";

  if (report_path != "-") {
    obs::write_report(report_path);
    std::cout << "\nobs run report (both runs combined) -> " << report_path
              << "\n";
  }
  return 0;
}
