#include "axc/logic/synth.hpp"

#include <gtest/gtest.h>

#include "axc/common/rng.hpp"
#include "axc/logic/simulator.hpp"

namespace axc::logic {
namespace {

// Core guarantee: synthesized netlist == truth table, for random
// multi-output functions across arities.
class SynthRandom
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(SynthRandom, NetlistMatchesTable) {
  const auto [n_in, n_out] = GetParam();
  axc::Rng rng(500 + n_in * 8 + n_out);
  for (int trial = 0; trial < 10; ++trial) {
    const TruthTable table =
        TruthTable::from_function(n_in, n_out, [&](std::uint32_t) {
          return static_cast<std::uint32_t>(rng.bits(n_out));
        });
    const Netlist netlist = synthesize(table, "rand");
    ASSERT_EQ(netlist.inputs().size(), n_in);
    ASSERT_EQ(netlist.outputs().size(), n_out);
    Simulator sim(netlist);
    for (std::uint32_t w = 0; w < table.row_count(); ++w) {
      ASSERT_EQ(sim.apply_word(w), table.value(w))
          << "inputs=" << n_in << " outputs=" << n_out << " w=" << w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SynthRandom,
    ::testing::Values(std::pair{1u, 1u}, std::pair{2u, 1u}, std::pair{3u, 2u},
                      std::pair{4u, 4u}, std::pair{5u, 3u}, std::pair{6u, 2u},
                      std::pair{8u, 1u}),
    [](const auto& info) {
      return "in" + std::to_string(info.param.first) + "out" +
             std::to_string(info.param.second);
    });

TEST(Synth, ConstantFunctions) {
  const TruthTable zero =
      TruthTable::from_function(3, 1, [](std::uint32_t) { return 0u; });
  const TruthTable one =
      TruthTable::from_function(3, 1, [](std::uint32_t) { return 1u; });
  const Netlist nl0 = synthesize(zero, "zero");
  const Netlist nl1 = synthesize(one, "one");
  EXPECT_DOUBLE_EQ(nl0.area_ge(), 0.0);  // tie cells are free
  EXPECT_DOUBLE_EQ(nl1.area_ge(), 0.0);
  Simulator s0(nl0);
  Simulator s1(nl1);
  for (unsigned w = 0; w < 8; ++w) {
    EXPECT_EQ(s0.apply_word(w), 0u);
    EXPECT_EQ(s1.apply_word(w), 1u);
  }
}

TEST(Synth, IdentityIsJustAWire) {
  const TruthTable ident =
      TruthTable::from_function(1, 1, [](std::uint32_t w) { return w; });
  SynthStats stats;
  const Netlist nl = synthesize(ident, "wire", &stats);
  EXPECT_EQ(stats.gate_count, 0u);  // single positive literal: no gate
  Simulator sim(nl);
  EXPECT_EQ(sim.apply_word(1), 1u);
  EXPECT_EQ(sim.apply_word(0), 0u);
}

TEST(Synth, PolaritySelectionHelpsNearlyFullFunctions) {
  // f = NOT(minterm 5): positive cover needs many cubes, the complement is
  // a single product -> inverted form must win and stay small.
  const TruthTable table = TruthTable::from_function(
      3, 1, [](std::uint32_t w) { return w == 5 ? 0u : 1u; });
  SynthStats stats;
  const Netlist nl = synthesize(table, "nearly_one", &stats);
  Simulator sim(nl);
  for (unsigned w = 0; w < 8; ++w) {
    EXPECT_EQ(sim.apply_word(w), w == 5 ? 0u : 1u);
  }
  // AND3-equivalent + inverter(s): never more than a handful of gates.
  EXPECT_LE(stats.gate_count, 5u);
}

TEST(Synth, SharedInputInvertersAcrossOutputs) {
  // Two outputs both needing !x0 must share one inverter.
  const TruthTable table =
      TruthTable::from_function(2, 2, [](std::uint32_t w) {
        const unsigned nx0 = 1u - (w & 1u);
        const unsigned x1 = (w >> 1) & 1u;
        return (nx0 & x1) | (nx0 << 1);
      });
  const Netlist nl = synthesize(table, "shared");
  int inverters = 0;
  for (const Gate& g : nl.gates()) inverters += g.type == CellType::Inv;
  EXPECT_LE(inverters, 2);  // 1 shared input inv (+ maybe 1 output inv)
}

TEST(ReduceTree, BalancedReduction) {
  Netlist nl;
  std::vector<NetId> nets;
  for (int i = 0; i < 5; ++i) nets.push_back(nl.add_input("i"));
  const NetId root = reduce_tree(nl, CellType::And2, nets);
  nl.mark_output(root, "y");
  EXPECT_EQ(nl.gate_count(), 4u);  // n-1 gates
  Simulator sim(nl);
  EXPECT_EQ(sim.apply_word(0b11111), 1u);
  EXPECT_EQ(sim.apply_word(0b11011), 0u);
}

TEST(ReduceTree, SingleOperandPassesThrough) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_EQ(reduce_tree(nl, CellType::Or2, {a}), a);
  EXPECT_EQ(nl.gate_count(), 0u);
}

}  // namespace
}  // namespace axc::logic
