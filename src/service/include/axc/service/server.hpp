/// \file server.hpp
/// The multi-threaded job server behind every transport.
///
/// Architecture (one box of DESIGN.md §8):
///
///   submit() -> [header parse] -> [result cache] -> [bounded MPMC queue]
///                                                      -> worker pool
///                                                         -> dispatch()
///                                                         -> cache insert
///                                                         -> done(response)
///
/// Load shedding is explicit, never implicit: a full queue answers
/// Status::Overloaded synchronously (the client sees backpressure instead
/// of unbounded latency), a request whose deadline expired while queued
/// answers DeadlineExceeded without executing, and a stopping server
/// answers ShuttingDown. stop() is a graceful drain: accepted jobs all
/// complete and every done() callback fires exactly once before the
/// workers join.
///
/// Instrumented through axc::obs: per-endpoint request counters
/// (service.<endpoint>.requests), queue-depth histogram
/// (service.queue_depth), per-endpoint execution spans
/// (service.latency.<endpoint> — wall-clock, so in the report's timings
/// section), cache hit/miss counters (service.cache.{hits,misses} — the
/// derived hit_rate appears in every run report) and rejected-request
/// counters (service.rejected.{overloaded,deadline,bad_request,
/// shutting_down}).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "axc/service/cache.hpp"
#include "axc/service/endpoints.hpp"
#include "axc/service/overload.hpp"
#include "axc/service/protocol.hpp"

namespace axc::service {

/// One response callback. Fired exactly once per submit(), possibly
/// synchronously (rejections and cache hits) and possibly from a worker
/// thread; implementations must be thread-safe against that.
using ResponseCallback = std::function<void(Bytes)>;

/// Pluggable request executor (tests gate it; production uses dispatch()).
/// The second argument is the degrade level the OverloadController
/// assigned at admission (0 unless overload degradation is enabled).
using Dispatcher =
    std::function<Bytes(std::span<const std::uint8_t>, unsigned)>;

struct ServerOptions {
  /// Worker threads; 0 = hardware concurrency (minimum 1).
  unsigned workers = 0;
  /// Pending-job bound K: with a full queue, submit() answers Overloaded.
  /// Jobs already executing do not count against K.
  std::size_t queue_capacity = 64;
  /// Result-cache entries across all shards; 0 disables caching.
  std::size_t cache_capacity = 1024;
  unsigned cache_shards = 8;
  /// Worker threads *inside* one job (see DispatchOptions::eval_threads).
  unsigned eval_threads = 1;
  /// Replaces dispatch() wholesale when set (tests); eval_threads is then
  /// the custom dispatcher's problem.
  Dispatcher dispatcher = {};
  /// Degrade-don't-drop policy; max_level = 0 (default) keeps the
  /// pre-overload behavior (every job at full fidelity).
  OverloadPolicy overload{};
  /// Honour Endpoint::CacheInsert requests (cluster replication): peers
  /// may seed this server's result cache with validated full-fidelity
  /// entries. Off by default — a stray or hostile client must not be able
  /// to poison a cache that didn't opt in to being a replica.
  bool accept_cache_inserts = false;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  /// Graceful: equivalent to stop().
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues one request. \p done fires exactly once with the complete
  /// response bytes — synchronously for rejections (Overloaded,
  /// ShuttingDown, malformed header) and cache hits, from a worker thread
  /// otherwise.
  void submit(Bytes request, ResponseCallback done);

  /// Synchronous convenience over submit(): blocks until the response.
  Bytes call(std::span<const std::uint8_t> request);

  /// Stops accepting work, completes every queued job, joins the workers.
  /// Idempotent; safe to call while submits race (they get ShuttingDown).
  void stop();

  /// Asynchronous stop signal for transports/signal handlers: flips the
  /// accepting flag (new submits answer ShuttingDown) without joining.
  /// A later stop() — e.g. from the destructor — performs the join.
  void request_stop();

  bool stopping() const;

  /// Jobs currently queued (executing jobs excluded).
  std::size_t queue_depth() const;

  const ServerOptions& options() const { return options_; }
  ResultCache& cache() { return cache_; }

 private:
  struct Job {
    Bytes request;
    ResponseCallback done;
    Endpoint endpoint = Endpoint::Ping;
    bool cacheable = false;
    std::uint64_t cache_key = 0;
    Bytes canonical;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    /// Ladder rung assigned by the OverloadController at admission.
    unsigned degrade_level = 0;
  };

  void worker_loop();
  void run_job(Job& job);
  /// Validates and applies one Endpoint::CacheInsert request; returns the
  /// response synchronously (replication seeding never queues behind
  /// compute jobs).
  Bytes handle_cache_insert(std::span<const std::uint8_t> request);

  ServerOptions options_;
  ResultCache cache_;
  Dispatcher dispatcher_;
  OverloadController overload_;  ///< guarded by mutex_

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<Job> queue_;
  bool accepting_ = true;
  bool joining_ = false;  ///< workers should exit once the queue drains
  std::vector<std::thread> workers_;
};

}  // namespace axc::service
