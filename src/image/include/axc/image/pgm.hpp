/// \file pgm.hpp
/// Portable GrayMap I/O so the examples can emit inspectable artifacts and
/// users can run the Fig. 10 experiment on their own images.
#pragma once

#include <string>

#include "axc/image/image.hpp"

namespace axc::image {

/// Writes \p image as binary PGM (P5). Throws std::runtime_error on I/O
/// failure.
void write_pgm(const Image& image, const std::string& path);

/// Reads a binary (P5) or ASCII (P2) PGM with maxval <= 255.
/// Throws std::runtime_error on parse or I/O failure.
Image read_pgm(const std::string& path);

}  // namespace axc::image
