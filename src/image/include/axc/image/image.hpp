/// \file image.hpp
/// 8-bit grayscale image container used by the filtering (Fig. 10) and
/// video-coding (Figs. 8-9) case studies.
#pragma once

#include <cstdint>
#include <vector>

namespace axc::image {

/// Row-major 8-bit grayscale image.
class Image {
 public:
  Image() = default;

  /// Creates a width x height image filled with \p fill.
  Image(int width, int height, std::uint8_t fill = 0);

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return pixels_.empty(); }

  /// Unchecked pixel access (callers iterate in-bounds by construction).
  std::uint8_t at(int x, int y) const { return pixels_[index(x, y)]; }
  void set(int x, int y, std::uint8_t value) { pixels_[index(x, y)] = value; }

  /// Clamp-to-edge access, the boundary convention of the filters.
  std::uint8_t at_clamped(int x, int y) const;

  const std::vector<std::uint8_t>& pixels() const { return pixels_; }
  std::vector<std::uint8_t>& pixels() { return pixels_; }

  bool operator==(const Image&) const = default;

 private:
  std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y) * width_ + x;
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> pixels_;
};

/// Mean squared error between two equally-sized images.
double image_mse(const Image& a, const Image& b);

/// Peak signal-to-noise ratio in dB (infinity for identical images).
double image_psnr(const Image& a, const Image& b);

}  // namespace axc::image
