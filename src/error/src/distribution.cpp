#include "axc/error/distribution.hpp"

#include <cstdlib>

#include "axc/common/bits.hpp"
#include "axc/common/require.hpp"
#include "axc/common/rng.hpp"

namespace axc::error {

void ErrorDistribution::record(std::int64_t error) {
  ++histogram_[error];
  ++samples_;
}

std::vector<std::int64_t> ErrorDistribution::support() const {
  std::vector<std::int64_t> values;
  values.reserve(histogram_.size());
  for (const auto& [value, count] : histogram_) values.push_back(value);
  return values;
}

double ErrorDistribution::probability(std::int64_t error) const {
  if (samples_ == 0) return 0.0;
  const auto it = histogram_.find(error);
  if (it == histogram_.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(samples_);
}

std::int64_t ErrorDistribution::optimal_offset() const {
  require(samples_ > 0, "ErrorDistribution::optimal_offset: empty");
  // Weighted median of the (ordered) histogram minimizes E|error - c|.
  // The corrector *adds* -median... we return the median of the error
  // itself; Cec negates when applying. Keeping the median here makes the
  // value directly comparable with the histogram.
  const std::uint64_t half = samples_ / 2;
  std::uint64_t running = 0;
  for (const auto& [value, count] : histogram_) {
    running += count;
    if (running > half) return value;
  }
  return histogram_.rbegin()->first;
}

double ErrorDistribution::residual_med(std::int64_t offset) const {
  if (samples_ == 0) return 0.0;
  double total = 0.0;
  for (const auto& [value, count] : histogram_) {
    total += static_cast<double>(std::llabs(value - offset)) *
             static_cast<double>(count);
  }
  return total / static_cast<double>(samples_);
}

ErrorDistribution adder_error_distribution(const arith::Adder& adder,
                                           unsigned max_exhaustive_bits,
                                           std::uint64_t samples,
                                           std::uint64_t seed) {
  const unsigned width = adder.width();
  const std::uint64_t mask = low_mask(width);
  ErrorDistribution dist;
  const auto record_pair = [&](std::uint64_t a, std::uint64_t b) {
    const std::int64_t approx =
        static_cast<std::int64_t>(adder.add(a, b, 0));
    const std::int64_t exact = static_cast<std::int64_t>(a + b);
    dist.record(approx - exact);
  };
  if (2 * width <= max_exhaustive_bits) {
    for (std::uint64_t a = 0; a <= mask; ++a) {
      for (std::uint64_t b = 0; b <= mask; ++b) record_pair(a, b);
    }
  } else {
    Rng rng(seed);
    for (std::uint64_t i = 0; i < samples; ++i) {
      record_pair(rng.bits(width), rng.bits(width));
    }
  }
  return dist;
}

}  // namespace axc::error
