/// \file sad_unit.hpp
/// Abstract interface of a SAD accelerator.
///
/// Motion estimation, the video encoder and the resilience layer all
/// consume SAD hardware through this interface, so any realization — the
/// behavioural ApxFA-cell accelerator (sad.hpp), the run-time configurable
/// one (configurable.hpp), the GeAr-based engine the adaptive controller
/// drives (resilience/gear_sad.hpp), or a fault-injecting wrapper — can be
/// dropped into the same pipeline. This is the accelerator-level analogue
/// of the arith::Adder interface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace axc::accel {

namespace detail {
/// Tallies one batched-SAD invocation (with its candidate count) into the
/// obs registry; every SadUnit realization's sad_batch should call it.
void count_sad_batch(std::size_t candidates);
}  // namespace detail

/// An engine computing the sum of absolute differences over two
/// equally-sized blocks of 8-bit pixels.
class SadUnit {
 public:
  virtual ~SadUnit() = default;

  /// Pixels per block (e.g. 64 for 8x8 blocks). Both spans passed to sad()
  /// must have exactly this many elements.
  virtual unsigned block_pixels() const = 0;

  /// Sum of absolute differences over two blocks.
  virtual std::uint64_t sad(std::span<const std::uint8_t> a,
                            std::span<const std::uint8_t> b) const = 0;

  /// Batched SAD of one current block against many candidate blocks — the
  /// motion-estimation access pattern (one block, a whole search window).
  /// \p candidates holds out.size() blocks back-to-back (block i at
  /// [i * block_pixels(), (i+1) * block_pixels())); on return
  /// out[i] == sad(a, candidate block i).
  ///
  /// The default walks the candidates in order through sad(), so every
  /// realization — behavioural, configurable, GeAr-based, fault-injecting
  /// wrapper — batches correctly (and stateful wrappers keep their exact
  /// historical call order). Packed engines override this: the
  /// netlist-backed NetlistSad evaluates up to 64 candidates per pass over
  /// its gate list (sad_netlist.hpp).
  virtual void sad_batch(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> candidates,
                         std::span<std::uint64_t> out) const;

  /// Human-readable identity, e.g. "ApxSAD3<4lsb,8x8>".
  virtual std::string name() const = 0;

  /// True if sad() is bit-exact for all inputs.
  virtual bool is_exact() const { return false; }

  /// True when sad()/sad_batch() may be called concurrently from several
  /// threads. Pure-functional engines override this to true; engines with
  /// mutable state (simulator activity counters, fault RNGs) stay false,
  /// and the block-parallel encoder falls back to one worker for them.
  virtual bool is_concurrent_safe() const { return false; }
};

}  // namespace axc::accel
