/// The ring's routing algebra: 160-bit ids, the Kademlia XOR metric,
/// prefix-range partitioning and the deterministic static ring. The
/// load-bearing facts pinned here: static_ring(N) tiles the key space
/// exactly (every key in exactly one range, any N), the owner of a key is
/// always its XOR-closest node id, and key_for_canonical is a pure
/// function of the canonical bytes — together these are what make
/// client-side routing coordination-free.
#include "axc/cluster/ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "axc/cluster/node_id.hpp"
#include "axc/common/rng.hpp"
#include "axc/service/protocol.hpp"

namespace axc::cluster {
namespace {

NodeId random_id(Rng& rng) {
  NodeId id;
  for (auto& byte : id.bytes) {
    byte = static_cast<std::uint8_t>(rng.below(256));
  }
  return id;
}

TEST(NodeId, BitOrderIsBigEndian) {
  NodeId id;
  id.set_bit(0, true);
  EXPECT_EQ(id.bytes[0], 0x80u);  // bit 0 = MSB of byte 0
  id.set_bit(7, true);
  EXPECT_EQ(id.bytes[0], 0x81u);
  id.set_bit(8, true);
  EXPECT_EQ(id.bytes[1], 0x80u);
  EXPECT_TRUE(id.bit(0));
  EXPECT_FALSE(id.bit(1));
  id.set_bit(0, false);
  EXPECT_FALSE(id.bit(0));
  EXPECT_EQ(id.bytes[0], 0x01u);

  // Bit order chosen so numeric comparison == lexicographic comparison.
  NodeId high, low;
  high.set_bit(0, true);
  low.set_bit(159, true);
  EXPECT_GT(high, low);
}

TEST(NodeId, XorDistanceIsAMetric) {
  Rng rng(0xA11CE5);
  for (int i = 0; i < 32; ++i) {
    const NodeId a = random_id(rng);
    const NodeId b = random_id(rng);
    EXPECT_EQ(xor_distance(a, a), NodeId::zero());
    EXPECT_EQ(xor_distance(a, b), xor_distance(b, a));
    // XOR "triangle equality": d(a,c) = d(a,b) ^ d(b,c) — so the
    // unidirectional property tests need no third point here.
  }
}

TEST(NodeId, LeadingZeroBitsCountsThePrefix) {
  EXPECT_EQ(leading_zero_bits(NodeId::zero()), NodeId::kBits);
  for (std::size_t bit = 0; bit < NodeId::kBits; bit += 13) {
    NodeId id;
    id.set_bit(bit, true);
    EXPECT_EQ(leading_zero_bits(id), bit);
  }
}

TEST(NodeId, ToHexIs40LowercaseDigits) {
  NodeId id;
  id.bytes[0] = 0xAB;
  id.bytes[19] = 0x01;
  const std::string hex = id.to_hex();
  ASSERT_EQ(hex.size(), 40u);
  EXPECT_EQ(hex.substr(0, 2), "ab");
  EXPECT_EQ(hex.substr(38), "01");
}

TEST(NodeIdRange, ReducedHalvesPartitionTheParent) {
  Rng rng(7);
  NodeIdRange parent = NodeIdRange::all();
  // Descend a few levels; at each one the two halves must tile the parent.
  for (int depth = 0; depth < 12; ++depth) {
    const NodeIdRange lower = parent.reduced(false);
    const NodeIdRange upper = parent.reduced(true);
    EXPECT_EQ(lower.mask, parent.mask + 1);
    for (int i = 0; i < 16; ++i) {
      NodeId key = random_id(rng);
      // Force the key into the parent range first.
      for (std::size_t bit = 0; bit < parent.mask; ++bit) {
        key.set_bit(bit, parent.stencil.bit(bit));
      }
      ASSERT_TRUE(parent.contains(key));
      EXPECT_NE(lower.contains(key), upper.contains(key));
    }
    parent = rng.below(2) ? upper : lower;
  }
}

TEST(Ring, StaticRingTilesTheKeySpaceForAnyN) {
  Rng rng(0xC0FFEE);
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4},
        std::size_t{5}, std::size_t{7}, std::size_t{8}, std::size_t{13},
        std::size_t{64}}) {
    const std::vector<NodeIdRange> ring = static_ring(n);
    ASSERT_EQ(ring.size(), n) << "n=" << n;
    EXPECT_TRUE(std::is_sorted(ring.begin(), ring.end(),
                               [](const NodeIdRange& a, const NodeIdRange& b) {
                                 return a.stencil < b.stencil;
                               }));
    // Non-power-of-two rings are allowed uneven slices, but never more
    // than a factor of two: masks differ by at most 1.
    std::size_t min_mask = NodeId::kBits, max_mask = 0;
    for (const NodeIdRange& range : ring) {
      min_mask = std::min(min_mask, range.mask);
      max_mask = std::max(max_mask, range.mask);
    }
    EXPECT_LE(max_mask - min_mask, 1u) << "n=" << n;
    // Every key lands in exactly one range.
    for (int i = 0; i < 64; ++i) {
      const NodeId key = random_id(rng);
      std::size_t containing = 0;
      for (const NodeIdRange& range : ring) {
        if (range.contains(key)) ++containing;
      }
      EXPECT_EQ(containing, 1u) << "n=" << n << " key=" << key.to_hex();
    }
  }
}

TEST(Ring, StaticRingIsDeterministic) {
  EXPECT_EQ(static_ring(6), static_ring(6));
  EXPECT_EQ(static_ring(1).at(0), NodeIdRange::all());
}

TEST(Ring, OwnerIsTheContainingRangeAndTheXorClosestNode) {
  Rng rng(0xBEEF);
  for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                              std::size_t{11}, std::size_t{32}}) {
    const RoutingTable table(n);
    ASSERT_EQ(table.size(), n);
    for (int i = 0; i < 128; ++i) {
      const NodeId key = random_id(rng);
      const std::size_t owner = table.owner_index(key);
      EXPECT_TRUE(table.range(owner).contains(key));
      // Prefix ownership and the Kademlia metric must agree: the owner's
      // stencil is the XOR-minimum over all node ids.
      for (std::size_t node = 0; node < n; ++node) {
        EXPECT_GE(xor_distance(table.node_id(node), key),
                  xor_distance(table.node_id(owner), key));
      }
    }
  }
}

TEST(Ring, ReplicasAreTheKClosestOwnerFirst) {
  Rng rng(0x5EED);
  const RoutingTable table(8);
  for (int i = 0; i < 32; ++i) {
    const NodeId key = random_id(rng);
    const std::vector<std::size_t> top3 = table.replicas(key, 3);
    ASSERT_EQ(top3.size(), 3u);
    EXPECT_EQ(top3[0], table.owner_index(key));
    // Distances strictly increase along the list (XOR with a fixed key is
    // a bijection over distinct ids, so ties are impossible).
    for (std::size_t r = 1; r < top3.size(); ++r) {
      EXPECT_LT(xor_distance(table.node_id(top3[r - 1]), key),
                xor_distance(table.node_id(top3[r]), key));
    }
    // Asking for more replicas than nodes returns every node once.
    const std::vector<std::size_t> all = table.replicas(key, 99);
    ASSERT_EQ(all.size(), table.size());
    std::vector<std::size_t> sorted = all;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t node = 0; node < table.size(); ++node) {
      EXPECT_EQ(sorted[node], node);
    }
  }
}

TEST(Ring, KeyForCanonicalIsDeterministicAndDeadlineBlind) {
  service::GearDesignSpaceRequest request;
  request.width = 8;
  const service::Bytes with_deadline = encode_request(request, 750);
  const service::Bytes without_deadline = encode_request(request, 0);

  const service::Bytes canonical_a =
      service::canonical_request_bytes(with_deadline);
  const service::Bytes canonical_b =
      service::canonical_request_bytes(without_deadline);
  // Canonicalization strips the deadline, so both keys agree: routing
  // never depends on per-call latency budgets.
  EXPECT_EQ(key_for_canonical(canonical_a), key_for_canonical(canonical_b));

  // And different requests diverge (the 160-bit space makes an
  // accidental collision across a handful of keys implausible).
  service::GearDesignSpaceRequest other = request;
  other.width = 16;
  const service::Bytes canonical_c = service::canonical_request_bytes(
      encode_request(other, 0));
  EXPECT_NE(key_for_canonical(canonical_a), key_for_canonical(canonical_c));
}

}  // namespace
}  // namespace axc::cluster
