/// Example: typed command-line client for axc_server.
///
/// One subcommand per service endpoint; responses print as one flat
/// key=value line per field so smoke scripts can grep them. Non-Ok
/// statuses (bad_request, overloaded, deadline_exceeded, ...) exit 3,
/// transport failures exit 1, usage errors exit 2.
///
/// With --ring <file> (one host:port per line, ring order) the client
/// routes through a ClusterClient instead of a single connection: each
/// request goes to the node owning its canonical hash, failing over
/// along the replica ranking when a node is dead or draining (see
/// DESIGN.md §12). Typed commands work identically in both modes;
/// pipeline/hold/shutdown are single-connection tools and stay non-ring.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "axc/cluster/client.hpp"
#include "axc/service/protocol.hpp"
#include "axc/service/retry.hpp"
#include "axc/service/tcp.hpp"
#include "axc/service/transport.hpp"
#include "cli_util.hpp"

namespace {

constexpr const char* kUsage =
    "usage: axc_client [--host <addr>] [--port <n>] [--deadline-ms <n>]\n"
    "                  <command> [command options]\n"
    "\n"
    "commands:\n"
    "  ping                     health check\n"
    "  characterize-adder       --family gear|loa|etai|ripple --width N\n"
    "                           --param-a R|lsbs [--param-b P] [--cell 0..5]\n"
    "                           [--vectors N] [--seed S]\n"
    "  characterize-multiplier  --structure recursive|wallace --width N\n"
    "                           [--block accurate|soa|ours] [--cell 0..5]\n"
    "                           [--approx-lsbs N] [--vectors N] [--seed S]\n"
    "  evaluate-error           --target gear|multiplier\n"
    "                           gear: [--n N --r R --p P] [--correction K]\n"
    "                           mul:  [--mul-width N] [--block ...]\n"
    "                                 [--cell 0..5] [--approx-lsbs N]\n"
    "                           [--max-exhaustive-bits B] [--samples N]\n"
    "                           [--seed S]\n"
    "  gear-design-space        [--width N] [--min-p P] [--include-exact]\n"
    "                           [--estimate-power] [--min-accuracy PCT]\n"
    "  hetero-adder-design-space\n"
    "                           [--width N] [--block-width B]\n"
    "                           [--no-truncated] [--estimate-power]\n"
    "                           [--min-accuracy PCT]\n"
    "  array-mul-design-space   [--width N] [--max-approx-columns C]\n"
    "                           [--estimate-power] [--min-accuracy PCT]\n"
    "  static-adder-design-space\n"
    "                           [--width N] [--max-approx-lsbs K]\n"
    "                           [--estimate-power] [--min-accuracy PCT]\n"
    "  encode-probe             [--width W] [--height H] [--frames F]\n"
    "                           [--objects K] [--sequence-seed S]\n"
    "                           [--sad-variant 0..5] [--approx-lsbs N]\n"
    "                           [--block-size B] [--search-range R]\n"
    "                           [--quant-step Q]\n"
    "  pipeline                 [--count N] pipelined pings over one\n"
    "                           multiplexed connection: N submits, one\n"
    "                           flush, responses collected in reverse\n"
    "                           order (needs --transport reactor\n"
    "                           server-side)\n"
    "  hold                     [--connections N] [--hold-ms T] open N\n"
    "                           idle connections, ping through the first\n"
    "                           and last, hold them T ms (for probing\n"
    "                           server thread counts under load)\n"
    "  shutdown                 ask the server to stop (needs\n"
    "                           --allow-remote-shutdown server-side)\n"
    "\n"
    "global options:\n"
    "  --host <addr>        numeric IPv4 server address (default 127.0.0.1)\n"
    "  --port <n>           server port (required unless --ring)\n"
    "  --ring <file>        route through a cluster ring instead of one\n"
    "                       server: one host:port per line, line i = ring\n"
    "                       index i (must match the servers' --ring-file);\n"
    "                       typed commands only\n"
    "  --deadline-ms <n>    per-request deadline, 0 = none (default 0)\n"
    "  --retries <n>        retry transport failures up to n times with\n"
    "                       exponential backoff, reconnecting each time\n"
    "                       (default 0 = fail fast)\n"
    "  --retry-base-ms <n>  base backoff before the first retry; doubles\n"
    "                       per attempt, jittered (default 50)\n"
    "  --read-timeout-ms <n> per-response read deadline, 0 = wait forever\n"
    "                       (default 0)\n"
    "  -h, --help           this text\n";

using axc::cli::flag_value;
using axc::cli::require_double;
using axc::cli::require_long;
using axc::cli::usage_error;

axc::arith::FullAdderKind parse_cell(const char* text) {
  const long raw = require_long(kUsage, "--cell", text, 0,
                                axc::arith::kFullAdderKindCount - 1);
  return static_cast<axc::arith::FullAdderKind>(raw);
}

axc::arith::Mul2x2Kind parse_block(const char* text) {
  const std::string name = text;
  if (name == "accurate") return axc::arith::Mul2x2Kind::Accurate;
  if (name == "soa") return axc::arith::Mul2x2Kind::SoA;
  if (name == "ours") return axc::arith::Mul2x2Kind::Ours;
  usage_error(kUsage, "--block must be accurate|soa|ours, got '" + name + "'");
}

void print_characterize(const axc::service::CharacterizeResponse& r) {
  std::printf("area_ge=%.6f power_nw=%.6f gate_count=%llu\n", r.area_ge,
              r.power_nw, static_cast<unsigned long long>(r.gate_count));
}

template <class ClientT>
int run_characterize_adder(ClientT& client, int argc,
                           char** argv, int i) {
  axc::service::CharacterizeAdderRequest req;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--family") {
      const std::string name = flag_value(kUsage, argc, argv, i);
      if (name == "gear") {
        req.family = axc::service::AdderFamily::Gear;
      } else if (name == "loa") {
        req.family = axc::service::AdderFamily::Loa;
      } else if (name == "etai") {
        req.family = axc::service::AdderFamily::Etai;
      } else if (name == "ripple") {
        req.family = axc::service::AdderFamily::Ripple;
      } else {
        usage_error(kUsage,
                    "--family must be gear|loa|etai|ripple, got '" + name +
                        "'");
      }
    } else if (arg == "--width") {
      req.width = static_cast<std::uint32_t>(require_long(
          kUsage, "--width", flag_value(kUsage, argc, argv, i), 1, 64));
    } else if (arg == "--param-a") {
      req.param_a = static_cast<std::uint32_t>(require_long(
          kUsage, "--param-a", flag_value(kUsage, argc, argv, i), 0, 64));
    } else if (arg == "--param-b") {
      req.param_b = static_cast<std::uint32_t>(require_long(
          kUsage, "--param-b", flag_value(kUsage, argc, argv, i), 0, 64));
    } else if (arg == "--cell") {
      req.cell = parse_cell(flag_value(kUsage, argc, argv, i));
    } else if (arg == "--vectors") {
      req.vectors = static_cast<std::uint64_t>(
          require_long(kUsage, "--vectors", flag_value(kUsage, argc, argv, i),
                       1, 1 << 20));
    } else if (arg == "--seed") {
      req.seed = static_cast<std::uint64_t>(require_long(
          kUsage, "--seed", flag_value(kUsage, argc, argv, i), 0, 1L << 62));
    } else {
      usage_error(kUsage, "unknown characterize-adder argument '" + arg + "'");
    }
  }
  print_characterize(client.characterize_adder(req));
  return 0;
}

template <class ClientT>
int run_characterize_multiplier(ClientT& client, int argc,
                                char** argv, int i) {
  axc::service::CharacterizeMultiplierRequest req;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--structure") {
      const std::string name = flag_value(kUsage, argc, argv, i);
      if (name == "recursive") {
        req.structure = axc::service::MultiplierStructure::Recursive;
      } else if (name == "wallace") {
        req.structure = axc::service::MultiplierStructure::Wallace;
      } else {
        usage_error(kUsage, "--structure must be recursive|wallace, got '" +
                                name + "'");
      }
    } else if (arg == "--width") {
      req.width = static_cast<std::uint32_t>(require_long(
          kUsage, "--width", flag_value(kUsage, argc, argv, i), 2, 16));
    } else if (arg == "--block") {
      req.block = parse_block(flag_value(kUsage, argc, argv, i));
    } else if (arg == "--cell") {
      req.cell = parse_cell(flag_value(kUsage, argc, argv, i));
    } else if (arg == "--approx-lsbs") {
      req.approx_lsbs = static_cast<std::uint32_t>(
          require_long(kUsage, "--approx-lsbs",
                       flag_value(kUsage, argc, argv, i), 0, 32));
    } else if (arg == "--vectors") {
      req.vectors = static_cast<std::uint64_t>(
          require_long(kUsage, "--vectors", flag_value(kUsage, argc, argv, i),
                       1, 1 << 20));
    } else if (arg == "--seed") {
      req.seed = static_cast<std::uint64_t>(require_long(
          kUsage, "--seed", flag_value(kUsage, argc, argv, i), 0, 1L << 62));
    } else {
      usage_error(kUsage,
                  "unknown characterize-multiplier argument '" + arg + "'");
    }
  }
  print_characterize(client.characterize_multiplier(req));
  return 0;
}

template <class ClientT>
int run_evaluate_error(ClientT& client, int argc, char** argv,
                       int i) {
  axc::service::EvaluateErrorRequest req;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--target") {
      const std::string name = flag_value(kUsage, argc, argv, i);
      if (name == "gear") {
        req.target = axc::service::EvalTarget::GearAdder;
      } else if (name == "multiplier") {
        req.target = axc::service::EvalTarget::Multiplier;
      } else {
        usage_error(kUsage,
                    "--target must be gear|multiplier, got '" + name + "'");
      }
    } else if (arg == "--n") {
      req.gear.n = static_cast<unsigned>(require_long(
          kUsage, "--n", flag_value(kUsage, argc, argv, i), 2, 64));
    } else if (arg == "--r") {
      req.gear.r = static_cast<unsigned>(require_long(
          kUsage, "--r", flag_value(kUsage, argc, argv, i), 1, 64));
    } else if (arg == "--p") {
      req.gear.p = static_cast<unsigned>(require_long(
          kUsage, "--p", flag_value(kUsage, argc, argv, i), 0, 64));
    } else if (arg == "--correction") {
      req.correction_iterations = static_cast<std::uint32_t>(require_long(
          kUsage, "--correction", flag_value(kUsage, argc, argv, i), 0, 64));
    } else if (arg == "--mul-width") {
      req.mul_width = static_cast<std::uint32_t>(require_long(
          kUsage, "--mul-width", flag_value(kUsage, argc, argv, i), 2, 16));
    } else if (arg == "--block") {
      req.mul_block = parse_block(flag_value(kUsage, argc, argv, i));
    } else if (arg == "--cell") {
      req.mul_cell = parse_cell(flag_value(kUsage, argc, argv, i));
    } else if (arg == "--approx-lsbs") {
      req.mul_approx_lsbs = static_cast<std::uint32_t>(
          require_long(kUsage, "--approx-lsbs",
                       flag_value(kUsage, argc, argv, i), 0, 32));
    } else if (arg == "--max-exhaustive-bits") {
      req.max_exhaustive_bits = static_cast<std::uint32_t>(
          require_long(kUsage, "--max-exhaustive-bits",
                       flag_value(kUsage, argc, argv, i), 0, 24));
    } else if (arg == "--samples") {
      req.samples = static_cast<std::uint64_t>(
          require_long(kUsage, "--samples", flag_value(kUsage, argc, argv, i),
                       1, 1 << 24));
    } else if (arg == "--seed") {
      req.seed = static_cast<std::uint64_t>(require_long(
          kUsage, "--seed", flag_value(kUsage, argc, argv, i), 0, 1L << 62));
    } else {
      usage_error(kUsage, "unknown evaluate-error argument '" + arg + "'");
    }
  }
  const auto r = client.evaluate_error(req);
  std::printf(
      "samples=%llu error_count=%llu max_error=%llu error_rate=%.6f "
      "med=%.6f nmed=%.8f mred=%.6f mse=%.6f rmse=%.6f exhaustive=%d\n",
      static_cast<unsigned long long>(r.samples),
      static_cast<unsigned long long>(r.error_count),
      static_cast<unsigned long long>(r.max_error), r.error_rate,
      r.mean_error_distance, r.normalized_med, r.mean_relative_error,
      r.mean_squared_error, r.root_mean_squared_error, r.exhaustive ? 1 : 0);
  return 0;
}

template <class ClientT>
int run_gear_design_space(ClientT& client, int argc, char** argv,
                          int i) {
  axc::service::GearDesignSpaceRequest req;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--width") {
      req.width = static_cast<std::uint32_t>(require_long(
          kUsage, "--width", flag_value(kUsage, argc, argv, i), 2, 16));
    } else if (arg == "--min-p") {
      req.min_p = static_cast<std::uint32_t>(require_long(
          kUsage, "--min-p", flag_value(kUsage, argc, argv, i), 1, 16));
    } else if (arg == "--include-exact") {
      req.include_exact = true;
    } else if (arg == "--estimate-power") {
      req.estimate_power = true;
    } else if (arg == "--min-accuracy") {
      req.min_accuracy = require_double(
          kUsage, "--min-accuracy", flag_value(kUsage, argc, argv, i), 0.0,
          100.0);
    } else {
      usage_error(kUsage, "unknown gear-design-space argument '" + arg + "'");
    }
  }
  const auto r = client.gear_design_space(req);
  std::printf("points=%zu max_accuracy_index=%u min_area_index=%u\n",
              r.points.size(), r.max_accuracy_index, r.min_area_index);
  for (const auto& p : r.points) {
    std::printf(
        "r=%u p=%u area_ge=%.4f power_nw=%.4f accuracy=%.4f pareto=%d\n", p.r,
        p.p, p.area_ge, p.power_nw, p.accuracy_percent,
        p.on_pareto_front ? 1 : 0);
  }
  return 0;
}

template <class ClientT>
int run_hetero_adder_design_space(ClientT& client, int argc, char** argv,
                                  int i) {
  axc::service::HeteroAdderDesignSpaceRequest req;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--width") {
      req.width = static_cast<std::uint32_t>(require_long(
          kUsage, "--width", flag_value(kUsage, argc, argv, i), 2, 32));
    } else if (arg == "--block-width") {
      req.block_width = static_cast<std::uint32_t>(require_long(
          kUsage, "--block-width", flag_value(kUsage, argc, argv, i), 1, 8));
    } else if (arg == "--no-truncated") {
      req.include_truncated = false;
    } else if (arg == "--estimate-power") {
      req.estimate_power = true;
    } else if (arg == "--min-accuracy") {
      req.min_accuracy = require_double(
          kUsage, "--min-accuracy", flag_value(kUsage, argc, argv, i), 0.0,
          100.0);
    } else {
      usage_error(kUsage,
                  "unknown hetero-adder-design-space argument '" + arg + "'");
    }
  }
  const auto r = client.hetero_adder_design_space(req);
  std::printf("points=%zu max_accuracy_index=%u min_area_index=%u\n",
              r.points.size(), r.max_accuracy_index, r.min_area_index);
  for (const auto& p : r.points) {
    std::printf(
        "low_kind=%s approx_blocks=%u area_ge=%.4f power_nw=%.4f "
        "accuracy=%.4f error_rate=%.6f med=%.6f nmed=%.8f wce=%llu "
        "pareto=%d\n",
        axc::designspace::hetero_sub_adder_name(p.low_kind), p.approx_blocks,
        p.area_ge, p.power_nw, p.accuracy_percent, p.error_rate, p.med,
        p.nmed, static_cast<unsigned long long>(p.wce),
        p.on_pareto_front ? 1 : 0);
  }
  return 0;
}

template <class ClientT>
int run_array_mul_design_space(ClientT& client, int argc, char** argv,
                               int i) {
  axc::service::ArrayMulDesignSpaceRequest req;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--width") {
      req.width = static_cast<std::uint32_t>(require_long(
          kUsage, "--width", flag_value(kUsage, argc, argv, i), 2, 16));
    } else if (arg == "--max-approx-columns") {
      req.max_approx_columns = static_cast<std::uint32_t>(
          require_long(kUsage, "--max-approx-columns",
                       flag_value(kUsage, argc, argv, i), 0, 32));
    } else if (arg == "--estimate-power") {
      req.estimate_power = true;
    } else if (arg == "--min-accuracy") {
      req.min_accuracy = require_double(
          kUsage, "--min-accuracy", flag_value(kUsage, argc, argv, i), 0.0,
          100.0);
    } else {
      usage_error(kUsage,
                  "unknown array-mul-design-space argument '" + arg + "'");
    }
  }
  const auto r = client.array_mul_design_space(req);
  std::printf("points=%zu max_accuracy_index=%u min_area_index=%u\n",
              r.points.size(), r.max_accuracy_index, r.min_area_index);
  for (const auto& p : r.points) {
    std::printf(
        "compressor=%s approx_columns=%u area_ge=%.4f power_nw=%.4f "
        "accuracy=%.4f error_rate_est=%.6f med_est=%.6f nmed_est=%.8f "
        "model_exact=%d pareto=%d\n",
        axc::designspace::compressor_kind_name(p.compressor),
        p.approx_columns, p.area_ge, p.power_nw, p.accuracy_percent,
        p.error_rate_est, p.med_est, p.nmed_est, p.model_exact ? 1 : 0,
        p.on_pareto_front ? 1 : 0);
  }
  return 0;
}

template <class ClientT>
int run_static_adder_design_space(ClientT& client, int argc, char** argv,
                                  int i) {
  axc::service::StaticAdderDesignSpaceRequest req;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--width") {
      req.width = static_cast<std::uint32_t>(require_long(
          kUsage, "--width", flag_value(kUsage, argc, argv, i), 2, 32));
    } else if (arg == "--max-approx-lsbs") {
      req.max_approx_lsbs = static_cast<std::uint32_t>(
          require_long(kUsage, "--max-approx-lsbs",
                       flag_value(kUsage, argc, argv, i), 0, 10));
    } else if (arg == "--estimate-power") {
      req.estimate_power = true;
    } else if (arg == "--min-accuracy") {
      req.min_accuracy = require_double(
          kUsage, "--min-accuracy", flag_value(kUsage, argc, argv, i), 0.0,
          100.0);
    } else {
      usage_error(kUsage,
                  "unknown static-adder-design-space argument '" + arg + "'");
    }
  }
  const auto r = client.static_adder_design_space(req);
  std::printf("points=%zu max_accuracy_index=%u min_area_index=%u\n",
              r.points.size(), r.max_accuracy_index, r.min_area_index);
  for (const auto& p : r.points) {
    std::printf(
        "kind=%s approx_lsbs=%u area_ge=%.4f power_nw=%.4f accuracy=%.4f "
        "error_rate=%.6f med=%.6f nmed=%.8f wce=%llu pareto=%d\n",
        axc::designspace::static_adder_kind_name(p.kind), p.approx_lsbs,
        p.area_ge, p.power_nw, p.accuracy_percent, p.error_rate, p.med,
        p.nmed, static_cast<unsigned long long>(p.wce),
        p.on_pareto_front ? 1 : 0);
  }
  return 0;
}

template <class ClientT>
int run_encode_probe(ClientT& client, int argc, char** argv,
                     int i) {
  axc::service::EncodeProbeRequest req;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--width") {
      req.width = static_cast<std::uint16_t>(require_long(
          kUsage, "--width", flag_value(kUsage, argc, argv, i), 8, 256));
    } else if (arg == "--height") {
      req.height = static_cast<std::uint16_t>(require_long(
          kUsage, "--height", flag_value(kUsage, argc, argv, i), 8, 256));
    } else if (arg == "--frames") {
      req.frames = static_cast<std::uint16_t>(require_long(
          kUsage, "--frames", flag_value(kUsage, argc, argv, i), 1, 32));
    } else if (arg == "--objects") {
      req.objects = static_cast<std::uint16_t>(require_long(
          kUsage, "--objects", flag_value(kUsage, argc, argv, i), 0, 16));
    } else if (arg == "--sequence-seed") {
      req.sequence_seed = static_cast<std::uint64_t>(
          require_long(kUsage, "--sequence-seed",
                       flag_value(kUsage, argc, argv, i), 0, 1L << 62));
    } else if (arg == "--sad-variant") {
      req.sad_variant = static_cast<std::uint8_t>(require_long(
          kUsage, "--sad-variant", flag_value(kUsage, argc, argv, i), 0, 5));
    } else if (arg == "--approx-lsbs") {
      req.approx_lsbs = static_cast<std::uint8_t>(
          require_long(kUsage, "--approx-lsbs",
                       flag_value(kUsage, argc, argv, i), 0, 15));
    } else if (arg == "--block-size") {
      req.block_size = static_cast<std::uint8_t>(require_long(
          kUsage, "--block-size", flag_value(kUsage, argc, argv, i), 4, 64));
    } else if (arg == "--search-range") {
      req.search_range = static_cast<std::uint8_t>(require_long(
          kUsage, "--search-range", flag_value(kUsage, argc, argv, i), 1, 16));
    } else if (arg == "--quant-step") {
      req.quant_step = static_cast<std::uint16_t>(require_long(
          kUsage, "--quant-step", flag_value(kUsage, argc, argv, i), 1, 255));
    } else {
      usage_error(kUsage, "unknown encode-probe argument '" + arg + "'");
    }
  }
  const auto r = client.encode_probe(req);
  std::printf("total_bits=%llu bits_per_frame=%.2f psnr_db=%.4f "
              "sad_calls=%llu\n",
              static_cast<unsigned long long>(r.total_bits), r.bits_per_frame,
              r.psnr_db, static_cast<unsigned long long>(r.sad_calls));
  return 0;
}

int run_pipeline(const std::string& host, std::uint16_t port,
                 axc::service::TcpConnectionOptions options, int argc,
                 char** argv, int i) {
  long count = 8;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--count") {
      count = require_long(kUsage, "--count", flag_value(kUsage, argc, argv, i),
                           1, 1 << 16);
    } else {
      usage_error(kUsage, "unknown pipeline argument '" + arg + "'");
    }
  }
  options.multiplex = true;
  axc::service::TcpConnection connection(host, port, options);
  axc::service::Client client(connection);
  std::vector<std::uint32_t> ids;
  ids.reserve(static_cast<std::size_t>(count));
  for (long k = 0; k < count; ++k) ids.push_back(client.submit_ping());
  // Collect newest-first: exercises out-of-order completion routing.
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    client.collect_ping(*it);
  }
  std::printf("pipelined=%ld collected=reverse ok\n", count);
  return 0;
}

/// Typed-command dispatch, shared between the single-server
/// RetryingClient and the ring-routing ClusterClient (their typed
/// facades are call-compatible; shutdown exists only on the former).
template <class ClientT>
int run_command(ClientT& client, const std::string& command, int argc,
                char** argv, int i) {
  int rc = 0;
  if (command == "ping") {
    if (i < argc) usage_error(kUsage, "ping takes no arguments");
    client.ping();
    std::printf("pong\n");
  } else if (command == "shutdown") {
    if constexpr (requires { client.shutdown(); }) {
      if (i < argc) usage_error(kUsage, "shutdown takes no arguments");
      client.shutdown();
      std::printf("shutdown acknowledged\n");
    } else {
      usage_error(kUsage,
                  "shutdown is a single-server command (drop --ring and "
                  "point --host/--port at one node)");
    }
  } else if (command == "characterize-adder") {
    rc = run_characterize_adder(client, argc, argv, i);
  } else if (command == "characterize-multiplier") {
    rc = run_characterize_multiplier(client, argc, argv, i);
  } else if (command == "evaluate-error") {
    rc = run_evaluate_error(client, argc, argv, i);
  } else if (command == "gear-design-space") {
    rc = run_gear_design_space(client, argc, argv, i);
  } else if (command == "hetero-adder-design-space") {
    rc = run_hetero_adder_design_space(client, argc, argv, i);
  } else if (command == "array-mul-design-space") {
    rc = run_array_mul_design_space(client, argc, argv, i);
  } else if (command == "static-adder-design-space") {
    rc = run_static_adder_design_space(client, argc, argv, i);
  } else if (command == "encode-probe") {
    rc = run_encode_probe(client, argc, argv, i);
  } else {
    usage_error(kUsage, "unknown command '" + command + "'");
  }
  if (client.last_served_level() > 0) {
    std::fprintf(stderr,
                 "axc_client: note: server degraded this response "
                 "(served_level=%u)\n",
                 static_cast<unsigned>(client.last_served_level()));
  }
  if (client.retries() > 0) {
    std::fprintf(stderr, "axc_client: note: %llu retr%s\n",
                 static_cast<unsigned long long>(client.retries()),
                 client.retries() == 1 ? "y" : "ies");
  }
  if constexpr (requires { client.failovers(); }) {
    if (client.failovers() > 0) {
      std::fprintf(stderr,
                   "axc_client: note: %llu failover%s (dead or draining "
                   "nodes routed around)\n",
                   static_cast<unsigned long long>(client.failovers()),
                   client.failovers() == 1 ? "" : "s");
    }
  }
  return rc;
}

/// One "host:port" per line, line i = ring index i — the same file the
/// servers were started with.
std::vector<axc::service::RetryingClient::ConnectionFactory>
ring_factories(const std::string& path,
               const axc::service::TcpConnectionOptions& options) {
  std::ifstream in(path);
  if (!in) usage_error(kUsage, "--ring: cannot open '" + path + "'");
  std::vector<axc::service::RetryingClient::ConnectionFactory> factories;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t colon = line.rfind(':');
    const long port =
        colon == std::string::npos || colon + 1 >= line.size()
            ? 0
            : std::strtol(line.c_str() + colon + 1, nullptr, 10);
    if (port < 1 || port > 65535) {
      usage_error(kUsage, "--ring: bad line '" + line +
                              "' in '" + path + "' (want host:port)");
    }
    const std::string host = line.substr(0, colon);
    factories.push_back([host, port, options] {
      return std::make_unique<axc::service::TcpConnection>(
          host, static_cast<std::uint16_t>(port), options);
    });
  }
  if (factories.empty()) {
    usage_error(kUsage, "--ring: '" + path + "' lists no nodes");
  }
  return factories;
}

int run_hold(const std::string& host, std::uint16_t port,
             const axc::service::TcpConnectionOptions& options, int argc,
             char** argv, int i) {
  long connections = 64;
  long hold_ms = 1000;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connections") {
      connections = require_long(kUsage, "--connections",
                                 flag_value(kUsage, argc, argv, i), 1, 4096);
    } else if (arg == "--hold-ms") {
      hold_ms = require_long(kUsage, "--hold-ms",
                             flag_value(kUsage, argc, argv, i), 0, 600000);
    } else {
      usage_error(kUsage, "unknown hold argument '" + arg + "'");
    }
  }
  std::vector<std::unique_ptr<axc::service::TcpConnection>> held;
  held.reserve(static_cast<std::size_t>(connections));
  for (long k = 0; k < connections; ++k) {
    held.push_back(
        std::make_unique<axc::service::TcpConnection>(host, port, options));
  }
  axc::service::Client(*held.front()).ping();
  axc::service::Client(*held.back()).ping();
  std::printf("holding=%ld for %ldms\n", connections, hold_ms);
  std::fflush(stdout);
  std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
  axc::service::Client(*held.front()).ping();
  std::printf("held=%ld ok\n", connections);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace axc;

  if (cli::wants_help(argc, argv)) {
    cli::print_usage(kUsage);
    return 0;
  }

  std::string host = "127.0.0.1";
  std::string ring_file;
  long port = -1;
  long deadline_ms = 0;
  long retries = 0;
  long retry_base_ms = 50;
  long read_timeout_ms = 0;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host") {
      host = flag_value(kUsage, argc, argv, i);
    } else if (arg == "--port") {
      port = require_long(kUsage, "--port", flag_value(kUsage, argc, argv, i),
                          1, 65535);
    } else if (arg == "--ring") {
      ring_file = flag_value(kUsage, argc, argv, i);
    } else if (arg == "--deadline-ms") {
      deadline_ms = require_long(kUsage, "--deadline-ms",
                                 flag_value(kUsage, argc, argv, i), 0,
                                 1L << 31);
    } else if (arg == "--retries") {
      retries = require_long(kUsage, "--retries",
                             flag_value(kUsage, argc, argv, i), 0, 100);
    } else if (arg == "--retry-base-ms") {
      retry_base_ms = require_long(kUsage, "--retry-base-ms",
                                   flag_value(kUsage, argc, argv, i), 1,
                                   60000);
    } else if (arg == "--read-timeout-ms") {
      read_timeout_ms = require_long(kUsage, "--read-timeout-ms",
                                     flag_value(kUsage, argc, argv, i), 0,
                                     1L << 31);
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error(kUsage, "unknown global option '" + arg + "'");
    } else {
      break;  // first non-flag token = command
    }
  }
  if (i >= argc) usage_error(kUsage, "missing command");
  if (ring_file.empty() && port < 0) {
    usage_error(kUsage, "--port is required (or --ring)");
  }
  if (!ring_file.empty() && port >= 0) {
    usage_error(kUsage, "--port and --ring are mutually exclusive");
  }
  const std::string command = argv[i++];

  try {
    // Reconnect-on-retry: the factory dials a fresh TCP connection for
    // every attempt that follows a transport failure, so the client can
    // out-wait a server restart (scripts/service_smoke.sh exercises this).
    service::TcpConnectionOptions connection_options;
    connection_options.read_timeout_ms =
        static_cast<std::uint32_t>(read_timeout_ms);

    // Transport-level commands drive raw connections, not RetryingClient.
    if (command == "pipeline" || command == "hold") {
      if (!ring_file.empty()) {
        usage_error(kUsage, command +
                                " drives one raw connection and has no "
                                "ring mode (drop --ring)");
      }
      if (command == "pipeline") {
        return run_pipeline(host, static_cast<std::uint16_t>(port),
                            connection_options, argc, argv, i);
      }
      return run_hold(host, static_cast<std::uint16_t>(port),
                      connection_options, argc, argv, i);
    }

    service::RetryPolicy policy;
    policy.max_attempts = 1 + static_cast<unsigned>(retries);
    policy.base_backoff_ms = static_cast<std::uint32_t>(retry_base_ms);
    policy.max_backoff_ms =
        static_cast<std::uint32_t>(std::min(32 * retry_base_ms, 60000L));

    if (!ring_file.empty()) {
      cluster::ClusterClientOptions options;
      options.retry = policy;
      options.deadline_ms = static_cast<std::uint32_t>(deadline_ms);
      cluster::ClusterClient client(
          ring_factories(ring_file, connection_options), options);
      return run_command(client, command, argc, argv, i);
    }

    service::RetryingClient client(
        [host, port, connection_options] {
          return std::make_unique<service::TcpConnection>(
              host, static_cast<std::uint16_t>(port), connection_options);
        },
        policy);
    client.set_deadline_ms(static_cast<std::uint32_t>(deadline_ms));
    return run_command(client, command, argc, argv, i);
  } catch (const service::ServiceError& e) {
    std::fprintf(stderr, "axc_client: %s: %s\n",
                 std::string(service::status_name(e.status())).c_str(),
                 e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "axc_client: error: %s\n", e.what());
    return 1;
  }
}
