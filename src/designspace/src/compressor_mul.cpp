#include "axc/designspace/compressor_mul.hpp"

#include <array>
#include <cmath>
#include <span>
#include <utility>

#include "axc/arith/full_adder.hpp"
#include "axc/common/require.hpp"
#include "axc/logic/adder_netlists.hpp"

namespace axc::designspace {

namespace {

// One reduction algorithm, three instantiations: BoolEnv (behavioral
// multiply), NetEnv (gate-level netlist) and ProbEnv (probabilistic error
// model). Column order, grouping and the compressor library are shared,
// so the three views cannot drift apart.

struct BoolEnv {
  using Bit = std::uint8_t;  // 0/1 (vector<bool> has no spans)
  Bit zero() { return 0; }
  Bit and2(Bit a, Bit b) { return a & b; }
  Bit or2(Bit a, Bit b) { return a | b; }
  Bit xor2(Bit a, Bit b) { return a ^ b; }
  Bit maj3(Bit a, Bit b, Bit c) { return ((a & b) | (a & c) | (b & c)); }
  std::vector<Bit> cpa(const std::vector<Bit>& row0,
                       const std::vector<Bit>& row1) {
    std::vector<Bit> out(row0.size());
    int carry = 0;
    for (std::size_t i = 0; i < row0.size(); ++i) {
      const int s = int(row0[i]) + int(row1[i]) + carry;
      out[i] = static_cast<Bit>(s & 1);
      carry = s >> 1;
    }
    return out;  // the final carry is provably 0 (deficit-only errors)
  }
};

struct NetEnv {
  using Bit = logic::NetId;
  logic::Netlist& nl;
  Bit zero_net;
  Bit zero() { return zero_net; }
  Bit and2(Bit a, Bit b) { return nl.add_gate(logic::CellType::And2, a, b); }
  Bit or2(Bit a, Bit b) { return nl.add_gate(logic::CellType::Or2, a, b); }
  Bit xor2(Bit a, Bit b) { return nl.add_gate(logic::CellType::Xor2, a, b); }
  Bit maj3(Bit a, Bit b, Bit c) {
    return nl.add_gate(logic::CellType::Maj3, a, b, c);
  }
  std::vector<Bit> cpa(const std::vector<Bit>& row0,
                       const std::vector<Bit>& row1) {
    const std::vector<arith::FullAdderKind> cells(
        row0.size(), arith::FullAdderKind::Accurate);
    std::vector<Bit> out =
        logic::add_ripple_adder(nl, row0, row1, zero_net, cells);
    out.pop_back();  // drop the provably-zero final carry
    return out;
  }
};

// Bits are one-probabilities under an input-independence assumption; the
// env additionally accumulates, per approximate compressor instance, the
// probability and expected magnitude of its (deficit-only) error.
struct ProbEnv {
  using Bit = double;
  double med_units = 0.0;  // sum over instances of E[deficit] * 2^column
  double ok_product = 1.0;  // product over instances of P(no deficit)
  Bit zero() { return 0.0; }
  Bit and2(Bit a, Bit b) { return a * b; }
  Bit or2(Bit a, Bit b) { return a + b - a * b; }
  Bit xor2(Bit a, Bit b) { return a + b - 2 * a * b; }
  Bit maj3(Bit a, Bit b, Bit c) {
    return a * b + a * c + b * c - 2 * a * b * c;
  }
  std::vector<Bit> cpa(const std::vector<Bit>& row0,
                       const std::vector<Bit>& row1) {
    return std::vector<Bit>(row0.size(), 0.0);  // unused by the model
  }
};

// Evaluates one compressor of `kind` on concrete bits: {sum, carry} plus
// has_cout/cout for the exact flavor (carry and cout both weigh 2x).
template <class Env>
struct C4Out {
  typename Env::Bit sum;
  typename Env::Bit carry;
  typename Env::Bit cout;
  bool has_cout;
};

template <class Env>
C4Out<Env> compress4_bits(Env& env, CompressorKind kind,
                          typename Env::Bit x1, typename Env::Bit x2,
                          typename Env::Bit x3, typename Env::Bit x4) {
  C4Out<Env> out{env.zero(), env.zero(), env.zero(), false};
  switch (kind) {
    case CompressorKind::Exact42: {
      // FA(x1,x2,x3) then HA(s1,x4): sum + 2*(carry + cout) is exact.
      const auto t = env.xor2(x1, x2);
      const auto s1 = env.xor2(t, x3);
      const auto c1 = env.maj3(x1, x2, x3);
      out.sum = env.xor2(s1, x4);
      out.carry = env.and2(s1, x4);
      out.cout = c1;
      out.has_cout = true;
      break;
    }
    case CompressorKind::PairXor: {
      // Pairwise XOR/AND, OR-combined: exact except when both pairs hold
      // exactly one 1 (deficit 1) or both are full (deficit 2).
      const auto sx = env.xor2(x1, x2);
      const auto sy = env.xor2(x3, x4);
      const auto cx = env.and2(x1, x2);
      const auto cy = env.and2(x3, x4);
      out.sum = env.or2(sx, sy);
      out.carry = env.or2(cx, cy);
      break;
    }
    case CompressorKind::OrPair: {
      // Each pair approximated by its OR, then a half adder: deficit 1
      // per (1,1) pair.
      const auto p = env.or2(x1, x2);
      const auto q = env.or2(x3, x4);
      out.sum = env.xor2(p, q);
      out.carry = env.and2(p, q);
      break;
    }
  }
  return out;
}

// ProbEnv needs the joint 16-row view of each compressor instance (both
// for exact-given-independence output probabilities and for the deficit
// statistics), so it overrides the gate-composition path.
template <class Env>
C4Out<Env> compress4(Env& env, CompressorKind kind, unsigned column,
                     typename Env::Bit x1, typename Env::Bit x2,
                     typename Env::Bit x3, typename Env::Bit x4) {
  (void)column;
  return compress4_bits(env, kind, x1, x2, x3, x4);
}

template <>
C4Out<ProbEnv> compress4<ProbEnv>(ProbEnv& env, CompressorKind kind,
                                  unsigned column, double p1, double p2,
                                  double p3, double p4) {
  C4Out<ProbEnv> out{0.0, 0.0, 0.0, kind == CompressorKind::Exact42};
  BoolEnv be;
  double p_deficit = 0.0;
  double e_deficit = 0.0;
  const std::array<double, 4> probs{p1, p2, p3, p4};
  for (unsigned row = 0; row < 16; ++row) {
    double weight = 1.0;
    std::array<bool, 4> x{};
    for (unsigned i = 0; i < 4; ++i) {
      x[i] = (row >> i) & 1;
      weight *= x[i] ? probs[i] : 1.0 - probs[i];
    }
    const C4Out<BoolEnv> bits =
        compress4_bits(be, kind, x[0], x[1], x[2], x[3]);
    const int exact = int(x[0]) + int(x[1]) + int(x[2]) + int(x[3]);
    const int approx = int(bits.sum) +
                       2 * (int(bits.carry) + (bits.has_cout ? int(bits.cout) : 0));
    const int deficit = exact - approx;  // >= 0 for every library member
    if (bits.sum) out.sum += weight;
    if (bits.carry) out.carry += weight;
    if (bits.has_cout && bits.cout) out.cout += weight;
    if (deficit > 0) {
      p_deficit += weight;
      e_deficit += weight * deficit;
    }
  }
  env.med_units += e_deficit * std::ldexp(1.0, static_cast<int>(column));
  env.ok_product *= 1.0 - p_deficit;
  return out;
}

template <class Env>
std::pair<typename Env::Bit, typename Env::Bit> full_add(
    Env& env, typename Env::Bit x, typename Env::Bit y,
    typename Env::Bit z) {
  const auto t = env.xor2(x, y);
  return {env.xor2(t, z), env.maj3(x, y, z)};
}

/// Column-wise reduction of the n x n partial-product matrix down to two
/// rows, then an exact carry-propagate add. Returns the 2n product bits.
template <class Env>
std::vector<typename Env::Bit> reduce_array(
    Env& env, unsigned n, CompressorKind kind, unsigned approx_columns,
    std::span<const typename Env::Bit> a,
    std::span<const typename Env::Bit> b) {
  using Bit = typename Env::Bit;
  const unsigned ncols = 2 * n;
  std::vector<std::vector<Bit>> cols(ncols);
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = 0; j < n; ++j) {
      cols[i + j].push_back(env.and2(a[i], b[j]));
    }
  }

  const auto too_tall = [&cols] {
    for (const auto& col : cols) {
      if (col.size() > 2) return true;
    }
    return false;
  };
  unsigned guard = 0;
  while (too_tall()) {
    require(++guard <= 64, "reduce_array: reduction failed to converge");
    std::vector<std::vector<Bit>> next(ncols);
    std::vector<Bit> discard;  // carries past column 2n-1 are provably 0
    for (unsigned c = 0; c < ncols; ++c) {
      std::vector<Bit>& bits = cols[c];
      std::vector<Bit>& up = c + 1 < ncols ? next[c + 1] : discard;
      const CompressorKind use =
          c < approx_columns ? kind : CompressorKind::Exact42;
      std::size_t i = 0;
      while (bits.size() - i >= 4) {
        const C4Out<Env> out = compress4(env, use, c, bits[i], bits[i + 1],
                                         bits[i + 2], bits[i + 3]);
        next[c].push_back(out.sum);
        up.push_back(out.carry);
        if (out.has_cout) up.push_back(out.cout);
        i += 4;
      }
      if (bits.size() - i == 3) {
        const auto [sum, carry] = full_add(env, bits[i], bits[i + 1],
                                           bits[i + 2]);
        next[c].push_back(sum);
        up.push_back(carry);
        i += 3;
      }
      for (; i < bits.size(); ++i) next[c].push_back(bits[i]);
    }
    cols = std::move(next);
  }

  std::vector<Bit> row0(ncols, env.zero());
  std::vector<Bit> row1(ncols, env.zero());
  for (unsigned c = 0; c < ncols; ++c) {
    if (!cols[c].empty()) row0[c] = cols[c][0];
    if (cols[c].size() > 1) row1[c] = cols[c][1];
  }
  return env.cpa(row0, row1);
}

void check_shape(unsigned width, unsigned approx_columns) {
  require(width >= 2 && width <= 16,
          "compressor multiplier: width must be in [2, 16]");
  require(approx_columns <= 2 * width,
          "compressor multiplier: approx_columns must be <= 2*width");
}

}  // namespace

const char* compressor_kind_name(CompressorKind kind) {
  switch (kind) {
    case CompressorKind::Exact42:
      return "Exact42";
    case CompressorKind::PairXor:
      return "PairXor";
    case CompressorKind::OrPair:
      return "OrPair";
  }
  return "?";
}

CompressorArrayMultiplier::CompressorArrayMultiplier(unsigned width,
                                                     CompressorKind kind,
                                                     unsigned approx_columns)
    : width_(width), kind_(kind), approx_columns_(approx_columns) {
  check_shape(width, approx_columns);
}

std::uint64_t CompressorArrayMultiplier::multiply(std::uint64_t a,
                                                  std::uint64_t b) const {
  const std::uint64_t mask = (1ull << width_) - 1;
  a &= mask;
  b &= mask;
  std::vector<std::uint8_t> abits(width_);
  std::vector<std::uint8_t> bbits(width_);
  for (unsigned i = 0; i < width_; ++i) {
    abits[i] = (a >> i) & 1;
    bbits[i] = (b >> i) & 1;
  }
  BoolEnv env;
  const std::vector<std::uint8_t> product =
      reduce_array(env, width_, kind_, approx_columns_,
                   std::span<const std::uint8_t>(abits),
                   std::span<const std::uint8_t>(bbits));
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < product.size(); ++i) {
    if (product[i]) out |= 1ull << i;
  }
  return out;
}

std::string CompressorArrayMultiplier::name() const {
  const char* tag = kind_ == CompressorKind::PairXor  ? "PX"
                    : kind_ == CompressorKind::OrPair ? "OP"
                                                      : "EX";
  return "CxMul" + std::to_string(width_) + "_" + tag +
         std::to_string(approx_columns_);
}

logic::Netlist compressor_mul_netlist(unsigned width, CompressorKind kind,
                                      unsigned approx_columns) {
  check_shape(width, approx_columns);
  logic::Netlist nl(
      CompressorArrayMultiplier(width, kind, approx_columns).name());
  std::vector<logic::NetId> a(width);
  std::vector<logic::NetId> b(width);
  for (unsigned i = 0; i < width; ++i) {
    a[i] = nl.add_input("a" + std::to_string(i));
  }
  for (unsigned i = 0; i < width; ++i) {
    b[i] = nl.add_input("b" + std::to_string(i));
  }
  NetEnv env{nl, nl.add_const(false)};
  const std::vector<logic::NetId> product =
      reduce_array(env, width, kind, approx_columns,
                   std::span<const logic::NetId>(a),
                   std::span<const logic::NetId>(b));
  for (std::size_t i = 0; i < product.size(); ++i) {
    nl.mark_output(product[i], "p" + std::to_string(i));
  }
  return nl;
}

MulErrorModel compressor_mul_error_model(unsigned width, CompressorKind kind,
                                         unsigned approx_columns) {
  check_shape(width, approx_columns);
  MulErrorModel model;
  if (approx_columns == 0 || kind == CompressorKind::Exact42) {
    model.exact = true;
    return model;
  }
  std::vector<double> a(width, 0.5);
  std::vector<double> b(width, 0.5);
  ProbEnv env;
  reduce_array(env, width, kind, approx_columns, std::span<const double>(a),
               std::span<const double>(b));
  model.med_est = env.med_units;
  model.error_rate_est = 1.0 - env.ok_product;
  const double max_operand = std::ldexp(1.0, static_cast<int>(width)) - 1.0;
  model.nmed_est = model.med_est / (max_operand * max_operand);
  // A config whose approximate columns never actually instantiate an
  // approximate compressor (too few bits to group) is genuinely exact.
  model.exact = model.med_est == 0.0;
  return model;
}

}  // namespace axc::designspace
