#include "axc/service/endpoints.hpp"

#include <algorithm>
#include <string>

#include "axc/accel/sad.hpp"
#include "axc/arith/adder.hpp"
#include "axc/arith/multiplier.hpp"
#include "axc/core/explorer.hpp"
#include "axc/core/pareto.hpp"
#include "axc/designspace/explorer.hpp"
#include "axc/error/evaluate.hpp"
#include "axc/logic/adder_netlists.hpp"
#include "axc/logic/characterize.hpp"
#include "axc/logic/mul_netlists.hpp"
#include "axc/video/encoder.hpp"
#include "axc/video/sequence.hpp"

namespace axc::service {

namespace {

/// Raised by handlers on out-of-policy parameters; mapped to BadRequest.
class PolicyError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

void check(bool condition, const char* message) {
  if (!condition) throw PolicyError(message);
}

// --- Degrade-don't-drop ladder --------------------------------------------
//
// Each helper maps (requested parameter, degrade level) to the cheaper
// effective parameter for that rung, clamped to a floor so level 255 is as
// safe as level 1. `applied` accumulates the level that actually changed
// something: a request already at the floor is served at level 0 and the
// client cannot tell it ever met the controller.

/// Quarters \p value per level, clamped below by min(value, floor).
std::uint64_t shed_quartering(std::uint64_t value, unsigned level,
                              std::uint64_t floor, unsigned& applied) {
  if (level == 0) return value;
  const unsigned shift = std::min(2 * level, 63u);
  const std::uint64_t shed = std::max(std::min(value, floor), value >> shift);
  if (shed != value) applied = std::max(applied, level);
  return shed;
}

/// Caps the exhaustive cutover so a degraded evaluation switches to
/// (cheaper) sampling where the full-fidelity one enumerates.
std::uint32_t shed_exhaustive_bits(std::uint32_t bits, unsigned level,
                                   unsigned& applied) {
  if (level == 0) return bits;
  const std::uint32_t cap = level >= 2 ? DegradeFloors::kExhaustiveBitsL2
                                       : DegradeFloors::kExhaustiveBitsL1;
  if (bits <= cap) return bits;
  applied = std::max(applied, level);
  return cap;
}

/// Halves the motion-search range per level, floor 1.
std::uint8_t shed_search_range(std::uint8_t range, unsigned level,
                               unsigned& applied) {
  if (level == 0) return range;
  const unsigned shift = std::min<unsigned>(level, 7);
  const auto shed = static_cast<std::uint8_t>(
      std::max<unsigned>(1, static_cast<unsigned>(range) >> shift));
  if (shed != range) applied = std::max(applied, level);
  return shed;
}

/// Drops the optional per-config power sim — the dominating cost of every
/// design-space sweep — under degradation. The accuracy/area ranking is
/// exact maths and survives; power_nw reads 0 and the level byte makes
/// the substitution visible to the client.
bool shed_power_estimate(bool estimate_power, unsigned level,
                         unsigned& applied) {
  if (level == 0 || !estimate_power) return estimate_power;
  applied = std::max(applied, level);
  return false;
}

// --- Shared design-space plumbing -----------------------------------------
//
// All four sweep endpoints answer the same three questions about a flat
// list of (area, power, accuracy) points: which lie on the area/error
// Pareto front, which single point maximizes accuracy, and which is the
// cheapest meeting an accuracy floor. The tie-breaks (first maximum,
// first minimum, points.size() as the none/infeasible sentinel) mirror
// core::max_accuracy_config / min_area_config_with_accuracy so the gear
// endpoint's wire behavior is unchanged by the refactor.

struct DesignSpaceSelection {
  std::vector<bool> on_front;
  std::uint32_t max_accuracy_index = 0;
  std::uint32_t min_area_index = 0;
};

DesignSpaceSelection select_design_space(
    const std::vector<core::DesignPoint>& flat, double min_accuracy) {
  DesignSpaceSelection selection;
  selection.on_front.assign(flat.size(), false);
  const auto front = core::pareto_front(
      flat, {core::minimize_area(), core::minimize_error()});
  for (const std::size_t i : front) selection.on_front[i] = true;

  std::size_t best_accuracy = flat.size();
  for (std::size_t i = 0; i < flat.size(); ++i) {
    if (best_accuracy == flat.size() ||
        flat[i].accuracy_percent > flat[best_accuracy].accuracy_percent) {
      best_accuracy = i;
    }
  }
  std::size_t best_area = flat.size();
  for (std::size_t i = 0; i < flat.size(); ++i) {
    if (flat[i].accuracy_percent < min_accuracy) continue;
    if (best_area == flat.size() ||
        flat[i].area_ge < flat[best_area].area_ge) {
      best_area = i;
    }
  }
  selection.max_accuracy_index = static_cast<std::uint32_t>(best_accuracy);
  selection.min_area_index = static_cast<std::uint32_t>(best_area);
  return selection;
}

CharacterizeResponse from_characterization(const logic::Characterization& c) {
  CharacterizeResponse response;
  response.area_ge = c.area_ge;
  response.power_nw = c.power_nw;
  response.gate_count = c.gate_count;
  return response;
}

Bytes handle_characterize_adder(std::span<const std::uint8_t> body,
                                const DispatchOptions& options,
                                unsigned& applied) {
  const CharacterizeAdderRequest request = decode_characterize_adder(body);
  check(request.width >= 1 &&
            request.width <= DispatchLimits::kMaxAdderWidth,
        "characterize_adder: width out of [1, 32]");
  check(request.vectors >= 1 &&
            request.vectors <= DispatchLimits::kMaxCharacterizeVectors,
        "characterize_adder: vectors out of [1, 65536]");
  logic::Netlist netlist;
  switch (request.family) {
    case AdderFamily::Gear: {
      const arith::GeArConfig config{request.width, request.param_a,
                                     request.param_b};
      check(config.is_valid(),
            "characterize_adder: invalid GeAr(N, R, P) configuration");
      netlist = logic::gear_adder_netlist(config);
      break;
    }
    case AdderFamily::Loa:
      check(request.param_a <= request.width,
            "characterize_adder: approx_lsbs exceeds width");
      netlist = logic::loa_adder_netlist(request.width, request.param_a);
      break;
    case AdderFamily::Etai:
      check(request.param_a <= request.width,
            "characterize_adder: approx_lsbs exceeds width");
      netlist = logic::etai_adder_netlist(request.width, request.param_a);
      break;
    case AdderFamily::Ripple: {
      check(request.param_a <= request.width,
            "characterize_adder: approx_lsbs exceeds width");
      const auto model = arith::RippleAdder::lsb_approximated(
          request.width, request.cell, request.param_a);
      netlist = logic::ripple_adder_netlist(model.cells());
      break;
    }
  }
  // Area/power only: quality questions go to evaluate_error, which scales
  // past the widths a truth-table reference could enumerate.
  const std::uint64_t vectors =
      shed_quartering(request.vectors, options.degrade_level,
                      DegradeFloors::kMinCharacterizeVectors, applied);
  const logic::Characterization c =
      logic::characterize(netlist, std::nullopt, vectors, request.seed);
  return encode_response(from_characterization(c));
}

Bytes handle_characterize_multiplier(std::span<const std::uint8_t> body,
                                     const DispatchOptions& options,
                                     unsigned& applied) {
  const CharacterizeMultiplierRequest request =
      decode_characterize_multiplier(body);
  check(request.width >= 2 && request.width <= 16 &&
            std::has_single_bit(request.width),
        "characterize_multiplier: width must be a power of two in [2, 16]");
  check(request.approx_lsbs <= 2 * request.width,
        "characterize_multiplier: approx_lsbs exceeds product width");
  check(request.vectors >= 1 &&
            request.vectors <= DispatchLimits::kMaxCharacterizeVectors,
        "characterize_multiplier: vectors out of [1, 65536]");
  logic::Netlist netlist;
  if (request.structure == MultiplierStructure::Recursive) {
    logic::MulNetlistSpec spec;
    spec.width = request.width;
    spec.block = request.block;
    spec.adder_cell = request.cell;
    spec.approx_lsbs = request.approx_lsbs;
    netlist = logic::multiplier_netlist(spec);
  } else {
    netlist = logic::wallace_netlist(request.width, request.cell,
                                     request.approx_lsbs);
  }
  const std::uint64_t vectors =
      shed_quartering(request.vectors, options.degrade_level,
                      DegradeFloors::kMinCharacterizeVectors, applied);
  const logic::Characterization c =
      logic::characterize(netlist, std::nullopt, vectors, request.seed);
  return encode_response(from_characterization(c));
}

Bytes handle_evaluate_error(std::span<const std::uint8_t> body,
                            const DispatchOptions& options,
                            unsigned& applied) {
  const EvaluateErrorRequest request = decode_evaluate_error(body);
  check(request.max_exhaustive_bits <= DispatchLimits::kMaxExhaustiveBits,
        "evaluate_error: max_exhaustive_bits out of [0, 24]");
  check(request.samples >= 1 &&
            request.samples <= DispatchLimits::kMaxSamples,
        "evaluate_error: samples out of [1, 2^24]");
  error::EvalOptions eval;
  eval.max_exhaustive_bits = shed_exhaustive_bits(
      request.max_exhaustive_bits, options.degrade_level, applied);
  eval.samples = shed_quartering(request.samples, options.degrade_level,
                                 DegradeFloors::kMinSamples, applied);
  eval.seed = request.seed;
  eval.threads = std::max(1u, options.eval_threads);

  error::ErrorStats stats;
  if (request.target == EvalTarget::GearAdder) {
    check(request.gear.is_valid(),
          "evaluate_error: invalid GeAr(N, R, P) configuration");
    check(request.gear.n <= DispatchLimits::kMaxAdderWidth,
          "evaluate_error: width out of [1, 32]");
    check(request.correction_iterations <= 64,
          "evaluate_error: correction_iterations out of [0, 64]");
    const arith::GeArAdder adder(request.gear,
                                 request.correction_iterations);
    stats = error::evaluate_adder(adder, eval);
  } else {
    check(request.mul_width >= 2 && request.mul_width <= 16 &&
              std::has_single_bit(request.mul_width),
          "evaluate_error: width must be a power of two in [2, 16]");
    check(request.mul_approx_lsbs <= 2 * request.mul_width,
          "evaluate_error: approx_lsbs exceeds product width");
    arith::MultiplierConfig config;
    config.width = request.mul_width;
    config.block = request.mul_block;
    config.adder_cell = request.mul_cell;
    config.approx_lsbs = request.mul_approx_lsbs;
    const arith::ApproxMultiplier multiplier(config);
    stats = error::evaluate_multiplier(multiplier, eval);
  }

  EvaluateErrorResponse response;
  response.samples = stats.samples;
  response.error_count = stats.error_count;
  response.max_error = stats.max_error;
  response.error_rate = stats.error_rate;
  response.mean_error_distance = stats.mean_error_distance;
  response.normalized_med = stats.normalized_med;
  response.mean_relative_error = stats.mean_relative_error;
  response.mean_squared_error = stats.mean_squared_error;
  response.root_mean_squared_error = stats.root_mean_squared_error;
  response.exhaustive = stats.exhaustive;
  return encode_response(response);
}

Bytes handle_gear_design_space(std::span<const std::uint8_t> body,
                               const DispatchOptions& options,
                               unsigned& applied) {
  const GearDesignSpaceRequest request = decode_gear_design_space(body);
  check(request.width >= 2 &&
            request.width <= DispatchLimits::kMaxGearSpaceWidth,
        "gear_design_space: width out of [2, 16]");
  check(request.min_accuracy >= 0.0 && request.min_accuracy <= 100.0,
        "gear_design_space: min_accuracy out of [0, 100]");
  core::ExploreOptions explore;
  explore.min_p = request.min_p;
  explore.include_exact = request.include_exact;
  explore.estimate_power = shed_power_estimate(
      request.estimate_power, options.degrade_level, applied);
  const auto space = core::explore_gear_space(request.width, explore);

  std::vector<core::DesignPoint> flat;
  flat.reserve(space.size());
  for (const auto& entry : space) flat.push_back(entry.point);
  const DesignSpaceSelection selection =
      select_design_space(flat, request.min_accuracy);

  GearDesignSpaceResponse response;
  response.points.reserve(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    GearDesignSpacePoint point;
    point.r = space[i].config.r;
    point.p = space[i].config.p;
    point.area_ge = space[i].point.area_ge;
    point.power_nw = space[i].point.power_nw;
    point.accuracy_percent = space[i].point.accuracy_percent;
    point.on_pareto_front = selection.on_front[i];
    response.points.push_back(point);
  }
  response.max_accuracy_index = selection.max_accuracy_index;
  response.min_area_index = selection.min_area_index;
  return encode_response(response);
}

Bytes handle_hetero_adder_design_space(std::span<const std::uint8_t> body,
                                       const DispatchOptions& options,
                                       unsigned& applied) {
  const HeteroAdderDesignSpaceRequest request =
      decode_hetero_adder_design_space(body);
  check(request.width >= 2 &&
            request.width <= DispatchLimits::kMaxHeteroSpaceWidth,
        "hetero_adder_design_space: width out of [2, 32]");
  check(request.block_width >= 1 &&
            request.block_width <= DispatchLimits::kMaxHeteroBlockWidth &&
            request.block_width <= request.width,
        "hetero_adder_design_space: block_width out of [1, min(width, 8)]");
  check(request.min_accuracy >= 0.0 && request.min_accuracy <= 100.0,
        "hetero_adder_design_space: min_accuracy out of [0, 100]");
  designspace::SweepOptions sweep;
  sweep.estimate_power = shed_power_estimate(
      request.estimate_power, options.degrade_level, applied);
  const auto space = designspace::explore_hetero_space(
      request.width, request.block_width, request.include_truncated, sweep);

  std::vector<core::DesignPoint> flat;
  flat.reserve(space.size());
  for (const auto& entry : space) flat.push_back(entry.point);
  const DesignSpaceSelection selection =
      select_design_space(flat, request.min_accuracy);

  HeteroAdderDesignSpaceResponse response;
  response.points.reserve(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    HeteroAdderDesignSpacePoint point;
    point.low_kind = space[i].low_kind;
    point.approx_blocks = space[i].approx_blocks;
    point.area_ge = space[i].point.area_ge;
    point.power_nw = space[i].point.power_nw;
    point.accuracy_percent = space[i].point.accuracy_percent;
    point.error_rate = space[i].model.error_rate;
    point.med = space[i].model.med;
    point.nmed = space[i].model.nmed;
    point.wce = space[i].model.wce;
    point.on_pareto_front = selection.on_front[i];
    response.points.push_back(point);
  }
  response.max_accuracy_index = selection.max_accuracy_index;
  response.min_area_index = selection.min_area_index;
  return encode_response(response);
}

Bytes handle_array_mul_design_space(std::span<const std::uint8_t> body,
                                    const DispatchOptions& options,
                                    unsigned& applied) {
  const ArrayMulDesignSpaceRequest request =
      decode_array_mul_design_space(body);
  check(request.width >= 2 &&
            request.width <= DispatchLimits::kMaxMulSpaceWidth,
        "array_mul_design_space: width out of [2, 16]");
  check(request.max_approx_columns <= 2 * request.width,
        "array_mul_design_space: max_approx_columns exceeds product width");
  check(request.min_accuracy >= 0.0 && request.min_accuracy <= 100.0,
        "array_mul_design_space: min_accuracy out of [0, 100]");
  designspace::SweepOptions sweep;
  sweep.estimate_power = shed_power_estimate(
      request.estimate_power, options.degrade_level, applied);
  const auto space = designspace::explore_compressor_mul_space(
      request.width, request.max_approx_columns, sweep);

  std::vector<core::DesignPoint> flat;
  flat.reserve(space.size());
  for (const auto& entry : space) flat.push_back(entry.point);
  const DesignSpaceSelection selection =
      select_design_space(flat, request.min_accuracy);

  ArrayMulDesignSpaceResponse response;
  response.points.reserve(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    ArrayMulDesignSpacePoint point;
    point.compressor = space[i].kind;
    point.approx_columns = space[i].approx_columns;
    point.area_ge = space[i].point.area_ge;
    point.power_nw = space[i].point.power_nw;
    point.accuracy_percent = space[i].point.accuracy_percent;
    point.error_rate_est = space[i].model.error_rate_est;
    point.med_est = space[i].model.med_est;
    point.nmed_est = space[i].model.nmed_est;
    point.model_exact = space[i].model.exact;
    point.on_pareto_front = selection.on_front[i];
    response.points.push_back(point);
  }
  response.max_accuracy_index = selection.max_accuracy_index;
  response.min_area_index = selection.min_area_index;
  return encode_response(response);
}

Bytes handle_static_adder_design_space(std::span<const std::uint8_t> body,
                                       const DispatchOptions& options,
                                       unsigned& applied) {
  const StaticAdderDesignSpaceRequest request =
      decode_static_adder_design_space(body);
  check(request.width >= 2 &&
            request.width <= DispatchLimits::kMaxStaticSpaceWidth,
        "static_adder_design_space: width out of [2, 32]");
  check(request.max_approx_lsbs <= request.width &&
            request.max_approx_lsbs <= DispatchLimits::kMaxStaticApproxLsbs,
        "static_adder_design_space: max_approx_lsbs out of [0, min(width, 10)]");
  check(request.min_accuracy >= 0.0 && request.min_accuracy <= 100.0,
        "static_adder_design_space: min_accuracy out of [0, 100]");
  designspace::SweepOptions sweep;
  sweep.estimate_power = shed_power_estimate(
      request.estimate_power, options.degrade_level, applied);
  const auto space = designspace::explore_static_adder_space(
      request.width, request.max_approx_lsbs, sweep);

  std::vector<core::DesignPoint> flat;
  flat.reserve(space.size());
  for (const auto& entry : space) flat.push_back(entry.point);
  const DesignSpaceSelection selection =
      select_design_space(flat, request.min_accuracy);

  StaticAdderDesignSpaceResponse response;
  response.points.reserve(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    StaticAdderDesignSpacePoint point;
    point.kind = space[i].kind;
    point.approx_lsbs = space[i].approx_lsbs;
    point.area_ge = space[i].point.area_ge;
    point.power_nw = space[i].point.power_nw;
    point.accuracy_percent = space[i].point.accuracy_percent;
    point.error_rate = space[i].model.error_rate;
    point.med = space[i].model.med;
    point.nmed = space[i].model.nmed;
    point.wce = space[i].model.wce;
    point.on_pareto_front = selection.on_front[i];
    response.points.push_back(point);
  }
  response.max_accuracy_index = selection.max_accuracy_index;
  response.min_area_index = selection.min_area_index;
  return encode_response(response);
}

Bytes handle_encode_probe(std::span<const std::uint8_t> body,
                          const DispatchOptions& options,
                          unsigned& applied) {
  const EncodeProbeRequest request = decode_encode_probe(body);
  check(request.block_size >= 2 && request.block_size <= 16,
        "encode_probe: block_size out of [2, 16]");
  check(request.width >= request.block_size &&
            request.width <= DispatchLimits::kMaxProbeDim &&
            request.height >= request.block_size &&
            request.height <= DispatchLimits::kMaxProbeDim,
        "encode_probe: frame dimensions out of [block_size, 256]");
  check(request.width % request.block_size == 0 &&
            request.height % request.block_size == 0,
        "encode_probe: frame dimensions must be block_size multiples");
  check(request.frames >= 1 &&
            request.frames <= DispatchLimits::kMaxProbeFrames,
        "encode_probe: frames out of [1, 32]");
  check(request.objects <= 16, "encode_probe: objects out of [0, 16]");
  check(request.sad_variant <= 5,
        "encode_probe: sad_variant out of [0, 5] (0 = accurate)");
  check(request.approx_lsbs <= 8,
        "encode_probe: approx_lsbs out of [0, 8]");
  check(request.search_range >= 1 && request.search_range <= 16,
        "encode_probe: search_range out of [1, 16]");
  check(request.quant_step >= 1 && request.quant_step <= 255,
        "encode_probe: quant_step out of [1, 255]");

  video::SequenceConfig sc;
  sc.width = request.width;
  sc.height = request.height;
  sc.frames = request.frames;
  sc.objects = request.objects;
  sc.seed = request.sequence_seed;
  const video::Sequence sequence = video::generate_sequence(sc);

  const unsigned block_pixels =
      static_cast<unsigned>(request.block_size) * request.block_size;
  const accel::SadConfig sad_config =
      request.sad_variant == 0
          ? accel::accu_sad(block_pixels)
          : accel::apx_sad_variant(request.sad_variant, request.approx_lsbs,
                                   block_pixels);
  const accel::SadAccelerator sad(sad_config);

  video::EncoderConfig ec;
  ec.motion.block_size = request.block_size;
  ec.motion.search_range =
      shed_search_range(request.search_range, options.degrade_level, applied);
  ec.quant_step = request.quant_step;
  ec.threads = std::max(1u, options.eval_threads);
  const video::EncodeStats stats = video::Encoder(ec, sad).encode(sequence);

  EncodeProbeResponse response;
  response.total_bits = stats.total_bits;
  response.bits_per_frame = stats.bits_per_frame;
  response.psnr_db = stats.psnr_db;
  response.sad_calls = stats.sad_calls;
  return encode_response(response);
}

}  // namespace

Bytes dispatch(std::span<const std::uint8_t> request,
               const DispatchOptions& options) {
  const std::optional<RequestHeader> header = parse_request_header(request);
  if (!header) {
    return encode_error_response(Status::BadRequest,
                                 "unparseable request header");
  }
  const auto body = request.subspan(kRequestHeaderBytes);
  // The level each handler *actually* shed to; stamped into the Ok
  // response header so clients can see which ladder rung answered.
  unsigned applied = 0;
  try {
    Bytes response;
    switch (header->endpoint) {
      case Endpoint::CharacterizeAdder:
        response = handle_characterize_adder(body, options, applied);
        break;
      case Endpoint::CharacterizeMultiplier:
        response = handle_characterize_multiplier(body, options, applied);
        break;
      case Endpoint::EvaluateError:
        response = handle_evaluate_error(body, options, applied);
        break;
      case Endpoint::GearDesignSpace:
        response = handle_gear_design_space(body, options, applied);
        break;
      case Endpoint::EncodeProbe:
        response = handle_encode_probe(body, options, applied);
        break;
      case Endpoint::HeteroAdderDesignSpace:
        response = handle_hetero_adder_design_space(body, options, applied);
        break;
      case Endpoint::ArrayMulDesignSpace:
        response = handle_array_mul_design_space(body, options, applied);
        break;
      case Endpoint::StaticAdderDesignSpace:
        response = handle_static_adder_design_space(body, options, applied);
        break;
      case Endpoint::Ping:
        response = encode_ok_response();
        break;
      case Endpoint::Shutdown:
        return encode_error_response(
            Status::BadRequest,
            "shutdown is transport-level (enable it on the TCP server)");
      case Endpoint::CacheInsert:
        // Server::submit intercepts replication seeds before dispatch;
        // reaching here means the transport lacks a Server (raw dispatch).
        return encode_error_response(
            Status::BadRequest,
            "cache_insert is server-level (enable accept_cache_inserts)");
    }
    if (response.empty()) {
      return encode_error_response(Status::BadRequest, "unknown endpoint");
    }
    set_response_level(
        response, static_cast<std::uint8_t>(std::min(applied, 255u)));
    return response;
  } catch (const PolicyError& e) {
    return encode_error_response(Status::BadRequest, e.what());
  } catch (const DecodeError& e) {
    return encode_error_response(Status::BadRequest, e.what());
  } catch (const std::invalid_argument& e) {
    // Library-layer precondition (require/AXC_REQUIRE): still the
    // caller's fault, not a server failure.
    return encode_error_response(Status::BadRequest, e.what());
  } catch (const std::exception& e) {
    return encode_error_response(Status::InternalError, e.what());
  }
}

}  // namespace axc::service
