/// \file explorer.hpp
/// Design-space exploration of the GeAr adder family — the machinery
/// behind Table IV and Fig. 4.
///
/// For a given operand width the explorer enumerates every valid (R, P)
/// configuration, prices it on the gate-level substrate (area in GE of the
/// structural GeAr netlist, power under random stimulus) and grades it
/// with the *analytic* error model — no simulation in the quality loop,
/// which is exactly the workflow the paper advocates.
#pragma once

#include <vector>

#include "axc/arith/gear.hpp"
#include "axc/core/design_point.hpp"

namespace axc::core {

/// A GeAr configuration with its characterization.
struct GearDesignPoint {
  arith::GeArConfig config;
  DesignPoint point;
};

/// Exploration controls.
struct ExploreOptions {
  unsigned min_p = 1;          ///< see arith::enumerate_gear_configs
  bool include_exact = false;  ///< add the L == N reference point
  bool estimate_power = false; ///< power sim is the slow part; opt in
};

/// Characterizes the whole N-bit GeAr space.
std::vector<GearDesignPoint> explore_gear_space(
    unsigned n, const ExploreOptions& options = {});

/// The paper's two selection queries on the 11-bit space:
/// max-accuracy configuration and min-area configuration subject to an
/// accuracy floor. Returns indices into \p space (space.size() if empty /
/// infeasible).
std::size_t max_accuracy_config(const std::vector<GearDesignPoint>& space);
std::size_t min_area_config_with_accuracy(
    const std::vector<GearDesignPoint>& space, double min_accuracy);

}  // namespace axc::core
