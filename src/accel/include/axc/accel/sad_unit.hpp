/// \file sad_unit.hpp
/// Abstract interface of a SAD accelerator.
///
/// Motion estimation, the video encoder and the resilience layer all
/// consume SAD hardware through this interface, so any realization — the
/// behavioural ApxFA-cell accelerator (sad.hpp), the run-time configurable
/// one (configurable.hpp), the GeAr-based engine the adaptive controller
/// drives (resilience/gear_sad.hpp), or a fault-injecting wrapper — can be
/// dropped into the same pipeline. This is the accelerator-level analogue
/// of the arith::Adder interface.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace axc::accel {

/// An engine computing the sum of absolute differences over two
/// equally-sized blocks of 8-bit pixels.
class SadUnit {
 public:
  virtual ~SadUnit() = default;

  /// Pixels per block (e.g. 64 for 8x8 blocks). Both spans passed to sad()
  /// must have exactly this many elements.
  virtual unsigned block_pixels() const = 0;

  /// Sum of absolute differences over two blocks.
  virtual std::uint64_t sad(std::span<const std::uint8_t> a,
                            std::span<const std::uint8_t> b) const = 0;

  /// Human-readable identity, e.g. "ApxSAD3<4lsb,8x8>".
  virtual std::string name() const = 0;

  /// True if sad() is bit-exact for all inputs.
  virtual bool is_exact() const { return false; }
};

}  // namespace axc::accel
