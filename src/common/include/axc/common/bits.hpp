/// \file bits.hpp
/// Small bit-manipulation utilities shared by the arithmetic and logic
/// substrates. All operand words are held in uint64_t; widths up to 63 bits
/// are supported by every routine here (wide enough for the paper's largest
/// 16x16 multiplier, whose product needs 32 bits).
#pragma once

#include <cstdint>

#include "axc/common/require.hpp"

namespace axc {

/// Returns a mask with the low \p width bits set. width must be <= 64.
constexpr std::uint64_t low_mask(unsigned width) {
  return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

/// Extracts bit \p index (0 = LSB) of \p value as 0 or 1.
constexpr unsigned bit_of(std::uint64_t value, unsigned index) {
  return static_cast<unsigned>((value >> index) & 1u);
}

/// Returns \p value with bit \p index set to \p bit (0 or 1).
constexpr std::uint64_t with_bit(std::uint64_t value, unsigned index,
                                 unsigned bit) {
  const std::uint64_t mask = std::uint64_t{1} << index;
  return bit ? (value | mask) : (value & ~mask);
}

/// Extracts \p width bits of \p value starting at bit \p lsb.
constexpr std::uint64_t bit_field(std::uint64_t value, unsigned lsb,
                                  unsigned width) {
  return (value >> lsb) & low_mask(width);
}

/// Sign-extends the low \p width bits of \p value to a signed 64-bit int.
constexpr std::int64_t sign_extend(std::uint64_t value, unsigned width) {
  const std::uint64_t m = std::uint64_t{1} << (width - 1);
  const std::uint64_t v = value & low_mask(width);
  return static_cast<std::int64_t>((v ^ m) - m);
}

}  // namespace axc
