/// Protocol-malice tests at the frame boundary: a hostile peer can send
/// anything — oversized length prefixes, zero-length bodies, stale
/// versions, garbage endpoint ids, half a frame then EOF — and the server
/// must answer with a typed error or drop that one connection, never
/// crash, hang, or leak (the asan-ubsan CI job runs this file too).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "axc/obs/obs.hpp"
#include "axc/service/protocol.hpp"
#include "axc/service/tcp.hpp"
#include "axc/service/transport.hpp"

namespace axc::service {
namespace {

class MaliceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset();
  }
};

std::uint64_t counter_value(const std::string& name) {
  const auto snap = obs::snapshot();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

/// A client that speaks raw bytes, not the protocol — the attacker's view.
class RawSocket {
 public:
  explicit RawSocket(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) < 0) {
      ::close(fd_);
      throw std::runtime_error("connect");
    }
  }

  ~RawSocket() {
    if (fd_ >= 0) ::close(fd_);
  }

  RawSocket(const RawSocket&) = delete;
  RawSocket& operator=(const RawSocket&) = delete;

  void send_bytes(const std::vector<std::uint8_t>& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  /// One framed payload back, or nullopt when the server closed first.
  std::optional<Bytes> read_frame(int timeout_ms = 5000) {
    std::uint8_t header[4];
    if (!read_exact(header, sizeof header, timeout_ms)) return std::nullopt;
    const std::uint32_t length =
        static_cast<std::uint32_t>(header[0]) | (header[1] << 8) |
        (header[2] << 16) | (static_cast<std::uint32_t>(header[3]) << 24);
    Bytes payload(length);
    if (length > 0 && !read_exact(payload.data(), length, timeout_ms)) {
      return std::nullopt;
    }
    return payload;
  }

  /// True once the peer closes/resets the stream within the timeout.
  bool wait_for_peer_close(int timeout_ms = 5000) {
    std::uint8_t byte = 0;
    return !read_exact(&byte, 1, timeout_ms);
  }

  void half_close() { ::shutdown(fd_, SHUT_WR); }

 private:
  bool read_exact(std::uint8_t* data, std::size_t size, int timeout_ms) {
    std::size_t got = 0;
    while (got < size) {
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (ready == 0) return false;  // timed out waiting for the peer
      const ssize_t n = ::read(fd_, data + got, size - got);
      if (n == 0) return false;                   // orderly close
      if (n < 0 && errno == ECONNRESET) return false;  // reset counts too
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      got += static_cast<std::size_t>(n);
    }
    return true;
  }

  int fd_ = -1;
};

std::vector<std::uint8_t> frame(const Bytes& payload) {
  Bytes framed;
  append_frame(framed, payload);
  return framed;
}

/// The server must still answer a well-behaved client after the attack.
void expect_server_still_serves(TcpServer& tcp) {
  TcpConnection connection("127.0.0.1", tcp.port());
  Client client(connection);
  EXPECT_NO_THROW(client.ping());
}

TEST_F(MaliceTest, OversizedLengthPrefixDropsOnlyThatConnection) {
  Server server(ServerOptions{});
  TcpServer tcp(server, {});

  RawSocket attacker(tcp.port());
  // Announce a 4 GiB frame; the server must refuse to allocate it.
  attacker.send_bytes({0xFF, 0xFF, 0xFF, 0xFF});
  EXPECT_TRUE(attacker.wait_for_peer_close());
  EXPECT_EQ(counter_value("service.tcp.connections_dropped"), 1u);

  expect_server_still_serves(tcp);
  tcp.stop();
  server.stop();
}

TEST_F(MaliceTest, ZeroLengthBodyAnswersBadRequestAndKeepsTheStream) {
  Server server(ServerOptions{});
  TcpServer tcp(server, {});

  RawSocket attacker(tcp.port());
  attacker.send_bytes({0x00, 0x00, 0x00, 0x00});  // empty payload frame
  const std::optional<Bytes> response = attacker.read_frame();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response_status(*response), Status::BadRequest);

  // An unparseable *request* is an application error, not a framing
  // violation: the stream survives and a valid request still works.
  attacker.send_bytes(frame(encode_request(Endpoint::Ping)));
  const std::optional<Bytes> pong = attacker.read_frame();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(response_status(*pong), Status::Ok);

  tcp.stop();
  server.stop();
}

TEST_F(MaliceTest, StaleProtocolVersionAnswersBadRequest) {
  Server server(ServerOptions{});
  TcpServer tcp(server, {});

  Bytes request = encode_request(Endpoint::Ping);
  request[0] = 1;  // the pre-served_level wire version
  RawSocket attacker(tcp.port());
  attacker.send_bytes(frame(request));
  const std::optional<Bytes> response = attacker.read_frame();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response_status(*response), Status::BadRequest);

  tcp.stop();
  server.stop();
}

TEST_F(MaliceTest, GarbageEndpointIdAnswersBadRequest) {
  Server server(ServerOptions{});
  TcpServer tcp(server, {});

  Bytes request = encode_request(Endpoint::Ping);
  request[1] = 0xEE;  // no such endpoint
  RawSocket attacker(tcp.port());
  attacker.send_bytes(frame(request));
  const std::optional<Bytes> response = attacker.read_frame();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response_status(*response), Status::BadRequest);

  tcp.stop();
  server.stop();
}

TEST_F(MaliceTest, MidFrameEofDropsCleanly) {
  Server server(ServerOptions{});
  TcpServer tcp(server, {});

  {
    RawSocket attacker(tcp.port());
    // Promise 100 bytes, deliver 10, walk away.
    attacker.send_bytes({100, 0x00, 0x00, 0x00});
    attacker.send_bytes({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
    attacker.half_close();
    EXPECT_TRUE(attacker.wait_for_peer_close());
  }

  // The drop is counted and contained.
  EXPECT_EQ(counter_value("service.tcp.connections_dropped"), 1u);
  expect_server_still_serves(tcp);
  tcp.stop();
  server.stop();
}

TEST_F(MaliceTest, ClientReadTimeoutIsTypedNotAHang) {
  // A listener that accepts and then never answers: the wedged-server
  // case the read deadline exists for.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                          &bound_len),
            0);
  const std::uint16_t port = ntohs(bound.sin_port);

  std::thread silent([listen_fd] {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      // Swallow whatever arrives, answer nothing.
      std::this_thread::sleep_for(std::chrono::milliseconds(1500));
      ::close(fd);
    }
  });

  TcpConnectionOptions options;
  options.read_timeout_ms = 100;
  TcpConnection connection("127.0.0.1", port, options);
  const auto start = std::chrono::steady_clock::now();
  try {
    (void)connection.roundtrip(encode_request(Endpoint::Ping));
    FAIL() << "silent peer must time out";
  } catch (const TransportError& error) {
    EXPECT_EQ(error.kind(), TransportError::Kind::Timeout);
  }
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(waited.count(), 1200);  // deadline honoured, not the full stall

  silent.join();
  ::close(listen_fd);
}

TEST_F(MaliceTest, MaliciousServerFrameOverflowIsTypedOnTheClient) {
  // A "server" announcing a 4 GiB response: the client must refuse it.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                          &bound_len),
            0);
  const std::uint16_t port = ntohs(bound.sin_port);

  std::thread evil([listen_fd] {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const std::uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
      (void)::send(fd, huge, sizeof huge, MSG_NOSIGNAL);
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      ::close(fd);
    }
  });

  TcpConnection connection("127.0.0.1", port);
  try {
    (void)connection.roundtrip(encode_request(Endpoint::Ping));
    FAIL() << "oversized response frame must be rejected";
  } catch (const TransportError& error) {
    EXPECT_EQ(error.kind(), TransportError::Kind::FrameOverflow);
  }

  evil.join();
  ::close(listen_fd);
}

}  // namespace
}  // namespace axc::service
